//! Atmospheric gaseous absorption.
//!
//! §7, footnote 3: "our design can be easily tuned to higher frequency bands
//! (such as 60 GHz)". The question a designer asks before doing that is
//! whether the 60 GHz oxygen absorption line matters at backscatter ranges.
//! This module carries a piecewise-log-linear fit of the ITU-R P.676 sea-level
//! specific-attenuation curve (oxygen + standard water vapour), good to a few
//! tenths of dB/km in the windows and capturing the 60 GHz O₂ peak — more
//! than enough to answer "is it negligible at 12 ft?" (it is: see the E11
//! experiment).

use mmtag_rf::units::{Db, Distance, Frequency};

/// Anchor points (GHz, dB/km) from ITU-R P.676 at sea level, 7.5 g/m³ vapour.
const ANCHORS: &[(f64, f64)] = &[
    (1.0, 0.005),
    (10.0, 0.01),
    (22.2, 0.2),  // water-vapour line
    (24.0, 0.15), // the mmTag ISM band sits just past the 22 GHz line
    (39.0, 0.1),
    (50.0, 0.4),
    (60.0, 15.0), // the O₂ absorption peak
    (70.0, 1.0),
    (77.0, 0.4),
    (100.0, 0.5),
];

/// Specific atmospheric attenuation at `freq`, dB per kilometer.
///
/// Piecewise log-log interpolation between the ITU anchor points; clamped to
/// the end anchors outside 1–100 GHz.
pub fn specific_attenuation_db_per_km(freq: Frequency) -> f64 {
    let f = freq.ghz();
    if f <= ANCHORS[0].0 {
        return ANCHORS[0].1;
    }
    for w in ANCHORS.windows(2) {
        let (f0, a0) = w[0];
        let (f1, a1) = w[1];
        if f <= f1 {
            let t = (f.ln() - f0.ln()) / (f1.ln() - f0.ln());
            return (a0.ln() + t * (a1.ln() - a0.ln())).exp();
        }
    }
    ANCHORS[ANCHORS.len() - 1].1
}

/// Total gaseous absorption over a path.
pub fn path_absorption(freq: Frequency, distance: Distance) -> Db {
    Db::new(specific_attenuation_db_per_km(freq) * distance.meters() / 1000.0)
}

/// Rain attenuation (ITU-R P.838 power-law fit, horizontal polarization),
/// dB/km, for a rain rate in mm/h. Indoor backscatter never sees this, but
/// outdoor deployments (smart-city tags) would.
pub fn rain_attenuation_db_per_km(freq: Frequency, rain_rate_mm_h: f64) -> f64 {
    assert!(rain_rate_mm_h >= 0.0, "rain rate cannot be negative");
    // k and α fits near the two bands we care about (24 and 60 GHz).
    let f = freq.ghz();
    let (k, alpha) = if f < 40.0 {
        (0.124, 1.061) // ~25 GHz
    } else {
        (0.700, 0.851) // ~60 GHz
    };
    k * rain_rate_mm_h.powf(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oxygen_peak_at_60ghz() {
        let a60 = specific_attenuation_db_per_km(Frequency::from_ghz(60.0));
        let a24 = specific_attenuation_db_per_km(Frequency::from_ghz(24.0));
        assert!((a60 - 15.0).abs() < 1e-9);
        assert!(a60 / a24 > 50.0, "60 GHz must dwarf 24 GHz: {a60} vs {a24}");
    }

    #[test]
    fn interpolation_is_monotone_into_the_peak() {
        let a50 = specific_attenuation_db_per_km(Frequency::from_ghz(50.0));
        let a55 = specific_attenuation_db_per_km(Frequency::from_ghz(55.0));
        let a60 = specific_attenuation_db_per_km(Frequency::from_ghz(60.0));
        assert!(a50 < a55 && a55 < a60);
    }

    #[test]
    fn absorption_at_backscatter_range_is_negligible_even_at_60ghz() {
        // The E11 design question: 15 dB/km over 12 ft (3.66 m) is 0.055 dB.
        let loss = path_absorption(Frequency::from_ghz(60.0), Distance::from_feet(12.0));
        assert!(loss.db() < 0.1, "60 GHz over 12 ft costs {loss}");
    }

    #[test]
    fn clamps_outside_fit_range() {
        assert_eq!(
            specific_attenuation_db_per_km(Frequency::from_mhz(500.0)),
            0.005
        );
        assert_eq!(
            specific_attenuation_db_per_km(Frequency::from_ghz(150.0)),
            0.5
        );
    }

    #[test]
    fn heavy_rain_matters_at_60ghz_kilometer_scale() {
        let a = rain_attenuation_db_per_km(Frequency::from_ghz(60.0), 25.0);
        assert!(a > 5.0, "heavy rain at 60 GHz: {a} dB/km");
        let b = rain_attenuation_db_per_km(Frequency::from_ghz(24.0), 25.0);
        assert!(b < a);
    }

    #[test]
    #[should_panic(expected = "rain rate")]
    fn negative_rain_is_a_bug() {
        let _ = rain_attenuation_db_per_km(Frequency::from_ghz(24.0), -1.0);
    }
}
