//! Delay spread and coherence bandwidth: when does Gbps OOK need an
//! equalizer?
//!
//! A 2 GHz-wide OOK symbol lasts 1 ns — 30 cm of flight. If a room's wall
//! bounces arrive spread over more than a symbol, they smear into the next
//! one (ISI). The standard summary statistics are the power-weighted RMS
//! delay spread `στ` and the coherence bandwidth `Bc ≈ 1/(5στ)`; a link is
//! equalizer-free while its signal bandwidth stays below `Bc` — which the
//! E23 experiment checks for the paper's operating points.
//!
//! The inputs are the same [`RaySet`]s the link budget uses, so the ISI
//! verdict is consistent with the power verdict by construction.

use crate::multipath::{Ray, RaySet};
use mmtag_rf::constants::SPEED_OF_LIGHT;
use mmtag_rf::units::Bandwidth;

/// A power-delay profile: per-ray (delay seconds, linear power).
#[derive(Clone, Debug, Default)]
pub struct DelayProfile {
    taps: Vec<(f64, f64)>,
}

impl DelayProfile {
    /// Builds the profile from a ray set and a per-ray power evaluation
    /// (dBm or any consistent dB scale).
    pub fn from_rays<F: Fn(&Ray) -> f64>(rays: &RaySet, power_dbm: F) -> Self {
        let taps = rays
            .rays()
            .iter()
            .map(|r| {
                // One-way delay: backscatter pays the path twice, but both
                // directions add identically, so ISI statistics scale by 2.
                let tau = 2.0 * r.length.meters() / SPEED_OF_LIGHT;
                let p = 10f64.powf(power_dbm(r) / 10.0);
                (tau, p)
            })
            .collect();
        DelayProfile { taps }
    }

    /// Builds directly from (delay, power) taps (for tests and synthetic
    /// channels).
    pub fn from_taps(taps: Vec<(f64, f64)>) -> Self {
        assert!(
            taps.iter().all(|&(t, p)| t >= 0.0 && p >= 0.0),
            "delays and powers must be non-negative"
        );
        DelayProfile { taps }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True when no path exists.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Total power.
    pub fn total_power(&self) -> f64 {
        self.taps.iter().map(|&(_, p)| p).sum()
    }

    /// Power-weighted mean delay, seconds. `None` for an empty profile.
    pub fn mean_delay(&self) -> Option<f64> {
        let total = self.total_power();
        if total <= 0.0 {
            return None;
        }
        Some(self.taps.iter().map(|&(t, p)| t * p).sum::<f64>() / total)
    }

    /// RMS delay spread `στ`, seconds. `None` for an empty profile.
    pub fn rms_delay_spread(&self) -> Option<f64> {
        let total = self.total_power();
        if total <= 0.0 {
            return None;
        }
        let mean = self.mean_delay()?;
        let second: f64 = self.taps.iter().map(|&(t, p)| t * t * p).sum::<f64>() / total;
        Some((second - mean * mean).max(0.0).sqrt())
    }

    /// Coherence bandwidth by the `Bc = 1/(5στ)` rule of thumb (50%
    /// frequency-correlation definition). `None` when there is no spread
    /// (single path: infinite coherence).
    pub fn coherence_bandwidth(&self) -> Option<Bandwidth> {
        let s = self.rms_delay_spread()?;
        if s <= 0.0 {
            return None;
        }
        Some(Bandwidth::from_hz(1.0 / (5.0 * s)))
    }

    /// True if a signal of `bandwidth` fits inside the coherence bandwidth
    /// (flat fading, no equalizer needed). A single-path channel is flat at
    /// any bandwidth.
    pub fn is_flat_for(&self, bandwidth: Bandwidth) -> bool {
        match self.coherence_bandwidth() {
            None => true,
            Some(bc) => bandwidth.hz() <= bc.hz(),
        }
    }

    /// Power of the strongest *echo* relative to the strongest tap, linear
    /// (`None` with fewer than two taps). For a 2-level OOK decision this
    /// is the metric that matters: an echo `x` dB down perturbs the eye by
    /// `√x` in amplitude even when the conservative `Bc` rule already
    /// declares the channel frequency-selective.
    pub fn strongest_echo_ratio(&self) -> Option<f64> {
        if self.taps.len() < 2 {
            return None;
        }
        let mut powers: Vec<f64> = self.taps.iter().map(|&(_, p)| p).collect();
        powers.sort_by(|a, b| b.total_cmp(a));
        (powers[0] > 0.0).then(|| powers[1] / powers[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmtag_rf::units::{Angle, Db, Distance};

    #[test]
    fn single_path_has_zero_spread() {
        let p = DelayProfile::from_taps(vec![(10e-9, 1.0)]);
        assert_eq!(p.rms_delay_spread().unwrap(), 0.0);
        assert!(p.coherence_bandwidth().is_none());
        assert!(p.is_flat_for(Bandwidth::from_ghz(100.0)));
    }

    #[test]
    fn two_equal_taps_spread_is_half_separation() {
        // στ of two equal-power taps Δτ apart is Δτ/2.
        let p = DelayProfile::from_taps(vec![(0.0, 1.0), (8e-9, 1.0)]);
        assert!((p.rms_delay_spread().unwrap() - 4e-9).abs() < 1e-15);
        assert!((p.mean_delay().unwrap() - 4e-9).abs() < 1e-15);
    }

    #[test]
    fn weak_echo_barely_moves_spread() {
        let strong = DelayProfile::from_taps(vec![(0.0, 1.0), (10e-9, 1.0)]);
        let weak = DelayProfile::from_taps(vec![(0.0, 1.0), (10e-9, 0.01)]);
        assert!(weak.rms_delay_spread().unwrap() < strong.rms_delay_spread().unwrap() / 3.0);
    }

    #[test]
    fn coherence_bandwidth_rule_of_thumb() {
        // στ = 10 ns ⇒ Bc = 20 MHz.
        let p = DelayProfile::from_taps(vec![(0.0, 1.0), (20e-9, 1.0)]);
        let bc = p.coherence_bandwidth().unwrap();
        assert!((bc.mhz() - 20.0).abs() < 1e-6, "Bc = {bc}");
        assert!(p.is_flat_for(Bandwidth::from_mhz(20.0)));
        assert!(!p.is_flat_for(Bandwidth::from_mhz(21.0)));
    }

    #[test]
    fn profile_from_rays_respects_power_weighting() {
        // LOS at 4 ft plus a 7 dB-loss bounce twice as long: the bounce's
        // weight must follow the evaluation function.
        let rays = RaySet::from_rays(vec![
            Ray::los(Distance::from_feet(4.0), Angle::ZERO, Angle::ZERO),
            Ray {
                length: Distance::from_feet(8.0),
                reflection_loss: Db::new(7.0),
                aod_reader: Angle::ZERO,
                aoa_tag: Angle::ZERO,
                bounces: 1,
            },
        ]);
        let eval = |r: &Ray| -40.0 * r.length.meters().log10() - 2.0 * r.reflection_loss.db();
        let p = DelayProfile::from_rays(&rays, eval);
        assert_eq!(p.len(), 2);
        let s = p.rms_delay_spread().unwrap();
        assert!(s > 0.0);
        // Round-trip extra delay of the bounce: 2·4 ft ≈ 2.44 m ⇒ 8.1 ns;
        // the weighted spread must be well under half of that (echo ≫
        // weaker: −12 dB spreading − 14 dB reflections).
        assert!(s < 4.0e-9, "στ = {s}");
    }

    #[test]
    fn paper_los_geometry_isi_verdict() {
        // The E23 finding in unit form. Fig. 7's LOS geometry (tag at 4 ft,
        // one wall bounce at 7 ft, 14 dB round-trip reflection loss):
        // the conservative Bc = 1/(5στ) rule lands near 0.5 GHz — *below*
        // the 2 GHz channel — yet the echo is ~24 dB under the LOS tap, so
        // OOK's 2-level eye barely moves (≈ 6% amplitude). Beam
        // directionality (not modeled here: the horn's pattern further
        // suppresses off-axis bounces) only helps. Verdict: no equalizer,
        // but the margin comes from echo weakness, not delay shortness.
        let rays = RaySet::from_rays(vec![
            Ray::los(Distance::from_feet(4.0), Angle::ZERO, Angle::ZERO),
            Ray {
                length: Distance::from_feet(7.0),
                reflection_loss: Db::new(7.0),
                aod_reader: Angle::ZERO,
                aoa_tag: Angle::ZERO,
                bounces: 1,
            },
        ]);
        let eval = |r: &Ray| -40.0 * r.length.meters().log10() - 2.0 * r.reflection_loss.db();
        let p = DelayProfile::from_rays(&rays, eval);
        let bc = p.coherence_bandwidth().unwrap();
        assert!(
            (0.2e9..1.0e9).contains(&bc.hz()),
            "conservative Bc = {bc} (expected ~0.5 GHz)"
        );
        let echo = p.strongest_echo_ratio().unwrap();
        assert!(
            10.0 * echo.log10() < -20.0,
            "echo at {} dB must be OOK-benign",
            10.0 * echo.log10()
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_is_a_bug() {
        let _ = DelayProfile::from_taps(vec![(-1e-9, 1.0)]);
    }
}
