//! Receiver noise floors — the three horizontal lines of Fig. 7.
//!
//! §8, footnote 4: "The receiver noise floor is computed based on typical
//! Noise Figure (i.e. NF=5) of mmWave receivers, bandwidth, and thermal noise
//! at the room temperature (i.e. 300 K)." That is:
//!
//! ```text
//! N = 10·log10(kT/1mW) + 10·log10(B) + NF
//!   ≈ −173.8 dBm/Hz + 10·log10(B) + 5 dB
//! ```
//!
//! giving ≈ −76 / −86 / −96 dBm at 2 GHz / 200 MHz / 20 MHz — the floors the
//! paper's rate annotations are read against.

use mmtag_rf::constants::BOLTZMANN;
use mmtag_rf::units::{Bandwidth, Db, Dbm, Temperature};

/// A receiver noise model: temperature plus noise figure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Physical temperature of the receive chain's source resistance.
    pub temperature: Temperature,
    /// Receiver noise figure.
    pub noise_figure: Db,
}

impl NoiseModel {
    /// The paper's receiver: NF = 5 dB at 300 K.
    pub fn mmtag_reader() -> Self {
        NoiseModel {
            temperature: Temperature::ROOM,
            noise_figure: Db::new(5.0),
        }
    }

    /// Noise power spectral density including NF, dBm/Hz.
    pub fn density_dbm_per_hz(&self) -> f64 {
        let kt_mw = BOLTZMANN * self.temperature.kelvin() / 1e-3;
        10.0 * kt_mw.log10() + self.noise_figure.db()
    }

    /// Integrated noise floor over `bandwidth`.
    pub fn floor(&self, bandwidth: Bandwidth) -> Dbm {
        Dbm::new(self.density_dbm_per_hz() + 10.0 * bandwidth.hz().log10())
    }

    /// SNR of a received power over `bandwidth`.
    pub fn snr(&self, received: Dbm, bandwidth: Bandwidth) -> Db {
        received - self.floor(bandwidth)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::mmtag_reader()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_floor_2ghz_is_about_minus_76dbm() {
        let n = NoiseModel::mmtag_reader().floor(Bandwidth::from_ghz(2.0));
        assert!((n.dbm() - (-75.8)).abs() < 0.3, "floor = {n}");
    }

    #[test]
    fn fig7_floor_200mhz_is_about_minus_86dbm() {
        let n = NoiseModel::mmtag_reader().floor(Bandwidth::from_mhz(200.0));
        assert!((n.dbm() - (-85.8)).abs() < 0.3, "floor = {n}");
    }

    #[test]
    fn fig7_floor_20mhz_is_about_minus_96dbm() {
        let n = NoiseModel::mmtag_reader().floor(Bandwidth::from_mhz(20.0));
        assert!((n.dbm() - (-95.8)).abs() < 0.3, "floor = {n}");
    }

    #[test]
    fn floors_are_10db_apart_per_decade_of_bandwidth() {
        let m = NoiseModel::mmtag_reader();
        let a = m.floor(Bandwidth::from_mhz(20.0));
        let b = m.floor(Bandwidth::from_mhz(200.0));
        assert!(((b - a).db() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn nf_shifts_floor_linearly() {
        let base = NoiseModel::mmtag_reader();
        let hot = NoiseModel {
            noise_figure: Db::new(8.0),
            ..base
        };
        let d = hot.floor(Bandwidth::from_mhz(100.0)) - base.floor(Bandwidth::from_mhz(100.0));
        assert!((d.db() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn snr_is_power_minus_floor() {
        let m = NoiseModel::mmtag_reader();
        let snr = m.snr(Dbm::new(-68.8), Bandwidth::from_ghz(2.0));
        // −68.8 − (−75.8) = 7 dB: exactly the paper's BER-10⁻³ ASK threshold.
        assert!((snr.db() - 7.0).abs() < 0.3, "SNR = {snr}");
    }
}
