//! Property-based tests for the channel layer: the link-budget laws hold
//! for arbitrary parameters, not just the calibrated defaults.

use mmtag_channel::fspl::{free_space_path_loss, friis_received_power};
use mmtag_channel::multipath::{Ray, RaySet};
use mmtag_channel::noise::NoiseModel;
use mmtag_channel::radar::BackscatterLink;
use mmtag_rf::units::{Angle, Bandwidth, Db, Dbi, Dbm, Distance, Frequency, Temperature};
use proptest::prelude::*;

proptest! {
    /// FSPL grows by exactly 20 dB per decade of distance at any frequency.
    #[test]
    fn fspl_20db_per_decade(ghz in 1f64..100.0, m in 0.1f64..100.0) {
        let f = Frequency::from_ghz(ghz);
        let l1 = free_space_path_loss(f, Distance::from_meters(m));
        let l10 = free_space_path_loss(f, Distance::from_meters(10.0 * m));
        prop_assert!((l10.db() - l1.db() - 20.0).abs() < 1e-9);
    }

    /// FSPL grows by 20 dB per decade of frequency at any distance.
    #[test]
    fn fspl_20db_per_frequency_decade(ghz in 1f64..30.0, m in 0.1f64..100.0) {
        let d = Distance::from_meters(m);
        let l1 = free_space_path_loss(Frequency::from_ghz(ghz), d);
        let l10 = free_space_path_loss(Frequency::from_ghz(10.0 * ghz), d);
        prop_assert!((l10.db() - l1.db() - 20.0).abs() < 1e-9);
    }

    /// Friis is monotone in every gain term.
    #[test]
    fn friis_monotone_in_gains(g in 0f64..40.0, extra in 0.1f64..20.0) {
        let p0 = friis_received_power(
            Dbm::new(10.0), Dbi::new(g), Dbi::new(g),
            Frequency::from_ghz(24.0), Distance::from_meters(2.0));
        let p1 = friis_received_power(
            Dbm::new(10.0), Dbi::new(g + extra), Dbi::new(g),
            Frequency::from_ghz(24.0), Distance::from_meters(2.0));
        prop_assert!((p1 - p0).db() > 0.0);
        prop_assert!(((p1 - p0).db() - extra).abs() < 1e-9);
    }

    /// Backscatter received power follows d⁻⁴ exactly: −12.04 dB per
    /// doubling, for any link parameters.
    #[test]
    fn backscatter_d4_law(
        tx in 0f64..30.0, gain in 0f64..30.0, tag in 0f64..30.0,
        m in 0.2f64..20.0,
    ) {
        let link = BackscatterLink {
            tx_power: Dbm::new(tx),
            reader_tx_gain: Dbi::new(gain),
            reader_rx_gain: Dbi::new(gain),
            frequency: Frequency::from_ghz(24.0),
            implementation_loss: Db::new(10.0),
        };
        let p1 = link.received_power(Db::new(tag), Distance::from_meters(m));
        let p2 = link.received_power(Db::new(tag), Distance::from_meters(2.0 * m));
        prop_assert!(((p1 - p2).db() - 12.0412).abs() < 1e-3);
    }

    /// max_range inverts received_power for any required power above/below.
    #[test]
    fn max_range_inversion(m in 0.3f64..30.0) {
        let link = BackscatterLink::mmtag_setup();
        let tag = Db::new(25.0);
        let p = link.received_power(tag, Distance::from_meters(m));
        let d = link.max_range(tag, p);
        prop_assert!((d.meters() - m).abs() / m < 1e-9);
    }

    /// Bistatic with equal legs equals monostatic; longer either leg is
    /// strictly worse.
    #[test]
    fn bistatic_consistency(m in 0.3f64..10.0, extra in 0.01f64..5.0) {
        let link = BackscatterLink::mmtag_setup();
        let tag = Db::new(25.0);
        let d = Distance::from_meters(m);
        let mono = link.received_power(tag, d);
        let bi = link.received_power_bistatic(tag, d, d, Db::ZERO);
        prop_assert!((mono - bi).db().abs() < 1e-9);
        let longer = link.received_power_bistatic(
            tag, d, Distance::from_meters(m + extra), Db::ZERO);
        prop_assert!(longer < bi);
    }

    /// Noise floor: +10 dB per bandwidth decade, +1 dB per NF dB, at any
    /// temperature.
    #[test]
    fn noise_floor_scalings(mhz in 0.1f64..3000.0, nf in 0f64..15.0, k in 100f64..400.0) {
        let m = NoiseModel {
            temperature: Temperature::from_kelvin(k),
            noise_figure: Db::new(nf),
        };
        let f1 = m.floor(Bandwidth::from_mhz(mhz));
        let f10 = m.floor(Bandwidth::from_mhz(10.0 * mhz));
        prop_assert!(((f10 - f1).db() - 10.0).abs() < 1e-9);
        let hotter = NoiseModel { noise_figure: Db::new(nf + 2.5), ..m };
        prop_assert!(((hotter.floor(Bandwidth::from_mhz(mhz)) - f1).db() - 2.5).abs() < 1e-9);
    }

    /// Ray sets: the best ray is never weaker than any member, and the
    /// non-coherent total never exceeds best + 10·log10(count).
    #[test]
    fn rayset_power_bounds(lengths in prop::collection::vec(0.5f64..20.0, 1..6)) {
        let rays: Vec<Ray> = lengths.iter().enumerate().map(|(i, &m)| Ray {
            length: Distance::from_meters(m),
            reflection_loss: Db::new(if i == 0 { 0.0 } else { 7.0 }),
            aod_reader: Angle::ZERO,
            aoa_tag: Angle::ZERO,
            bounces: (i != 0) as u8,
        }).collect();
        let n = rays.len();
        let set = RaySet::from_rays(rays);
        let eval = |r: &Ray| -40.0 * r.length.meters().log10() - 2.0 * r.reflection_loss.db();
        let (_, best) = set.best_ray_by(eval).unwrap();
        let total = set.total_power_dbm(eval).unwrap();
        prop_assert!(total >= best - 1e-9);
        prop_assert!(total <= best + 10.0 * (n as f64).log10() + 1e-9);
    }

    /// Blocking the LOS of a multi-ray set leaves only bounced rays; the
    /// best NLOS is never stronger than the former best overall.
    #[test]
    fn block_los_never_improves(lengths in prop::collection::vec(0.5f64..20.0, 2..6)) {
        let rays: Vec<Ray> = lengths.iter().enumerate().map(|(i, &m)| Ray {
            length: Distance::from_meters(m),
            reflection_loss: Db::new(if i == 0 { 0.0 } else { 7.0 }),
            aod_reader: Angle::ZERO,
            aoa_tag: Angle::ZERO,
            bounces: (i != 0) as u8,
        }).collect();
        let mut set = RaySet::from_rays(rays);
        let eval = |r: &Ray| -40.0 * r.length.meters().log10() - 2.0 * r.reflection_loss.db();
        let (_, before) = set.best_ray_by(eval).unwrap();
        set.block_los();
        if let Some((ray, after)) = set.best_ray_by(eval) {
            prop_assert!(ray.bounces > 0);
            prop_assert!(after <= before + 1e-9);
        }
    }
}
