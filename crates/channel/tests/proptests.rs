//! Randomized property tests for the channel layer: the link-budget laws
//! hold for arbitrary parameters, not just the calibrated defaults.
//!
//! Cases are drawn deterministically from the in-house [`mmtag_rf::rng`]
//! generator (no external property-testing framework — the workspace
//! builds offline); each assertion prints the inputs that produced it.

use mmtag_channel::fspl::{free_space_path_loss, friis_received_power};
use mmtag_channel::multipath::{Ray, RaySet};
use mmtag_channel::noise::NoiseModel;
use mmtag_channel::radar::BackscatterLink;
use mmtag_rf::rng::{Rng, SeedTree, Xoshiro256pp};
use mmtag_rf::units::{Angle, Bandwidth, Db, Dbi, Dbm, Distance, Frequency, Temperature};

const CASES: usize = 256;

fn cases(label: &'static str) -> impl Iterator<Item = Xoshiro256pp> {
    let tree = SeedTree::new(0xC4A7_7E57);
    (0..CASES).map(move |i| tree.rng_indexed(label, i as u64))
}

/// FSPL grows by exactly 20 dB per decade of distance at any frequency.
#[test]
fn fspl_20db_per_decade() {
    for mut rng in cases("fspl-dist") {
        let ghz = rng.in_range(1.0, 100.0);
        let m = rng.log_range(0.1, 100.0);
        let f = Frequency::from_ghz(ghz);
        let l1 = free_space_path_loss(f, Distance::from_meters(m));
        let l10 = free_space_path_loss(f, Distance::from_meters(10.0 * m));
        assert!((l10.db() - l1.db() - 20.0).abs() < 1e-9, "ghz={ghz} m={m}");
    }
}

/// FSPL grows by 20 dB per decade of frequency at any distance.
#[test]
fn fspl_20db_per_frequency_decade() {
    for mut rng in cases("fspl-freq") {
        let ghz = rng.in_range(1.0, 30.0);
        let m = rng.log_range(0.1, 100.0);
        let d = Distance::from_meters(m);
        let l1 = free_space_path_loss(Frequency::from_ghz(ghz), d);
        let l10 = free_space_path_loss(Frequency::from_ghz(10.0 * ghz), d);
        assert!((l10.db() - l1.db() - 20.0).abs() < 1e-9, "ghz={ghz} m={m}");
    }
}

/// Friis is monotone in every gain term.
#[test]
fn friis_monotone_in_gains() {
    for mut rng in cases("friis") {
        let g = rng.in_range(0.0, 40.0);
        let extra = rng.in_range(0.1, 20.0);
        let p0 = friis_received_power(
            Dbm::new(10.0),
            Dbi::new(g),
            Dbi::new(g),
            Frequency::from_ghz(24.0),
            Distance::from_meters(2.0),
        );
        let p1 = friis_received_power(
            Dbm::new(10.0),
            Dbi::new(g + extra),
            Dbi::new(g),
            Frequency::from_ghz(24.0),
            Distance::from_meters(2.0),
        );
        assert!((p1 - p0).db() > 0.0, "g={g} extra={extra}");
        assert!(((p1 - p0).db() - extra).abs() < 1e-9, "g={g} extra={extra}");
    }
}

/// Backscatter received power follows d⁻⁴ exactly: −12.04 dB per
/// doubling, for any link parameters.
#[test]
fn backscatter_d4_law() {
    for mut rng in cases("d4") {
        let tx = rng.in_range(0.0, 30.0);
        let gain = rng.in_range(0.0, 30.0);
        let tag = rng.in_range(0.0, 30.0);
        let m = rng.log_range(0.2, 20.0);
        let link = BackscatterLink {
            tx_power: Dbm::new(tx),
            reader_tx_gain: Dbi::new(gain),
            reader_rx_gain: Dbi::new(gain),
            frequency: Frequency::from_ghz(24.0),
            implementation_loss: Db::new(10.0),
        };
        let p1 = link.received_power(Db::new(tag), Distance::from_meters(m));
        let p2 = link.received_power(Db::new(tag), Distance::from_meters(2.0 * m));
        assert!(((p1 - p2).db() - 12.0412).abs() < 1e-3, "m={m}");
    }
}

/// max_range inverts received_power for any required power above/below.
#[test]
fn max_range_inversion() {
    for mut rng in cases("range-inv") {
        let m = rng.log_range(0.3, 30.0);
        let link = BackscatterLink::mmtag_setup();
        let tag = Db::new(25.0);
        let p = link.received_power(tag, Distance::from_meters(m));
        let d = link.max_range(tag, p);
        assert!((d.meters() - m).abs() / m < 1e-9, "m={m}");
    }
}

/// Bistatic with equal legs equals monostatic; longer either leg is
/// strictly worse.
#[test]
fn bistatic_consistency() {
    for mut rng in cases("bistatic") {
        let m = rng.log_range(0.3, 10.0);
        let extra = rng.in_range(0.01, 5.0);
        let link = BackscatterLink::mmtag_setup();
        let tag = Db::new(25.0);
        let d = Distance::from_meters(m);
        let mono = link.received_power(tag, d);
        let bi = link.received_power_bistatic(tag, d, d, Db::ZERO);
        assert!((mono - bi).db().abs() < 1e-9, "m={m}");
        let longer =
            link.received_power_bistatic(tag, d, Distance::from_meters(m + extra), Db::ZERO);
        assert!(longer < bi, "m={m} extra={extra}");
    }
}

/// Noise floor: +10 dB per bandwidth decade, +1 dB per NF dB, at any
/// temperature.
#[test]
fn noise_floor_scalings() {
    for mut rng in cases("noise") {
        let mhz = rng.log_range(0.1, 3000.0);
        let nf = rng.in_range(0.0, 15.0);
        let k = rng.in_range(100.0, 400.0);
        let m = NoiseModel {
            temperature: Temperature::from_kelvin(k),
            noise_figure: Db::new(nf),
        };
        let f1 = m.floor(Bandwidth::from_mhz(mhz));
        let f10 = m.floor(Bandwidth::from_mhz(10.0 * mhz));
        assert!(((f10 - f1).db() - 10.0).abs() < 1e-9, "mhz={mhz}");
        let hotter = NoiseModel {
            noise_figure: Db::new(nf + 2.5),
            ..m
        };
        assert!(
            ((hotter.floor(Bandwidth::from_mhz(mhz)) - f1).db() - 2.5).abs() < 1e-9,
            "nf={nf}"
        );
    }
}

/// A random multi-bounce ray set: ray 0 is LOS, the rest lose 7 dB.
fn random_rayset<R: Rng + ?Sized>(rng: &mut R, min_rays: usize) -> (RaySet, usize) {
    let n = min_rays + rng.index(6 - min_rays);
    let rays: Vec<Ray> = (0..n)
        .map(|i| Ray {
            length: Distance::from_meters(rng.in_range(0.5, 20.0)),
            reflection_loss: Db::new(if i == 0 { 0.0 } else { 7.0 }),
            aod_reader: Angle::ZERO,
            aoa_tag: Angle::ZERO,
            bounces: (i != 0) as u8,
        })
        .collect();
    (RaySet::from_rays(rays), n)
}

fn eval(r: &Ray) -> f64 {
    -40.0 * r.length.meters().log10() - 2.0 * r.reflection_loss.db()
}

/// Ray sets: the best ray is never weaker than any member, and the
/// non-coherent total never exceeds best + 10·log10(count).
#[test]
fn rayset_power_bounds() {
    for mut rng in cases("rayset") {
        let (set, n) = random_rayset(&mut rng, 1);
        let (_, best) = set.best_ray_by(eval).unwrap();
        let total = set.total_power_dbm(eval).unwrap();
        assert!(total >= best - 1e-9, "n={n}");
        assert!(total <= best + 10.0 * (n as f64).log10() + 1e-9, "n={n}");
    }
}

/// Blocking the LOS of a multi-ray set leaves only bounced rays; the
/// best NLOS is never stronger than the former best overall.
#[test]
fn block_los_never_improves() {
    for mut rng in cases("block-los") {
        let (mut set, n) = random_rayset(&mut rng, 2);
        let (_, before) = set.best_ray_by(eval).unwrap();
        set.block_los();
        if let Some((ray, after)) = set.best_ray_by(eval) {
            assert!(ray.bounces > 0, "n={n}");
            assert!(after <= before + 1e-9, "n={n}");
        }
    }
}
