//! The `mmtag` CLI subcommands.
//!
//! Each command is a pure function from parsed [`Args`] to an output
//! `String`, so the full command surface is unit-tested without spawning
//! processes; `main` only dispatches and prints.

use crate::args::{ArgError, Args};
use mmtag::baseline::comparison_rows;
use mmtag::energy::{advantage_over_active_radio, EnergyBudget, Harvester};
use mmtag::localization::{locate, position_error};
use mmtag::prelude::*;
use mmtag::scenario::{build_reader, build_scene, build_tag, offset_poses};
use mmtag::storage::{steady_state_cycle, StorageCap};
use mmtag_antenna::sparams::{ElementPort, SwitchState};
use mmtag_bench::scenarios::registry;
use mmtag_mac::city::{CityConfig, CityEngine};
use mmtag_rf::obs;
use mmtag_rf::rng::{SeedTree, Xoshiro256pp};
use mmtag_sim::experiment::linspace;
use mmtag_sim::scenario::Runner;
use std::fmt::Write as _;

/// Top-level dispatch. Unknown/missing commands return the help text.
///
/// `--trace <file>` (valid on every command) turns the observability layer
/// up to [`obs::Level::Trace`] for the duration of the command and writes
/// the recorded spans as Chrome tracing JSON (load the file at
/// `chrome://tracing` or in Perfetto). Tracing never changes command
/// output — the engine merges observability events in deterministic unit
/// order, so traced and untraced runs print identical bytes.
pub fn run(args: &Args) -> Result<String, ArgError> {
    let Some(trace_path) = args.options.get("trace") else {
        return dispatch(args);
    };
    obs::set_level(obs::Level::Trace);
    let result = dispatch(args);
    obs::set_level(obs::Level::Off);
    let report = obs::drain();
    std::fs::write(trace_path, report.to_chrome_json()).map_err(|e| ArgError::TraceWrite {
        path: trace_path.clone(),
        message: e.to_string(),
    })?;
    result
}

/// Routes a parsed command line to its command function.
fn dispatch(args: &Args) -> Result<String, ArgError> {
    if args.command.as_deref() != Some("run") {
        if let Some(op) = &args.operand {
            return Err(ArgError::UnexpectedPositional(op.clone()));
        }
    }
    match args.command.as_deref() {
        Some("link") => cmd_link(args),
        Some("sweep") => cmd_sweep(args),
        Some("s11") => cmd_s11(args),
        Some("inventory") => cmd_inventory(args),
        Some("city") => cmd_city(args),
        Some("locate") => cmd_locate(args),
        Some("energy") => cmd_energy(args),
        Some("compare") => Ok(cmd_compare()),
        Some("scenarios") => Ok(cmd_scenarios()),
        Some("run") => cmd_run(args),
        Some("serve") => cmd_serve(args),
        _ => Ok(help()),
    }
}

/// `mmtag serve`: the simulation-as-a-service daemon. Blocks until some
/// client sends `{"op":"shutdown"}`, then returns a shutdown summary.
fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    use mmtag_sim::serve::{EngineConfig, Server};
    if args.options.contains_key("trace") {
        // Executors drain the global obs log after every job to keep a
        // long-lived daemon bounded, which would swallow an enclosing
        // trace capture's spans mid-flight.
        return Err(ArgError::Serve {
            message: "--trace is not supported on serve (executors drain the obs log per job)"
                .into(),
        });
    }
    let config = EngineConfig {
        executors: args.usize_or("executors", 2)?.max(1),
        job_threads: args.usize_or("job-threads", 2)?.max(1),
        queue_capacity: args.usize_or("queue-cap", 64)?.max(1),
        memory_capacity: args.usize_or("memory-cap", 256)?.max(1),
    };
    let mut builder = Server::builder(registry()).config(config);
    if !args.options.contains_key("no-cache") {
        // Lifecycle budgets: 0 (the default) means unbounded. Enforcement
        // is amortized on the store path; the hit path never scans.
        let max_bytes = args.u64_or("cache-max-bytes", 0)?;
        let max_age_secs = args.u64_or("cache-max-age", 0)?;
        let policy = mmtag_sim::cache::CachePolicy {
            max_bytes: (max_bytes > 0).then_some(max_bytes),
            max_age: (max_age_secs > 0).then(|| std::time::Duration::from_secs(max_age_secs)),
        };
        builder = builder.cache(mmtag_sim::cache::RunCache::at_default_dir().with_policy(policy));
    }
    let socket = args.options.get("socket");
    let tcp = args.options.get("tcp");
    if socket.is_none() && tcp.is_none() {
        return Err(ArgError::Serve {
            message: "need a listener: --socket <path> and/or --tcp <host:port>".into(),
        });
    }
    #[cfg(unix)]
    if let Some(path) = socket {
        builder = builder.unix(path);
    }
    #[cfg(not(unix))]
    if socket.is_some() {
        return Err(ArgError::Serve {
            message: "--socket requires Unix-domain sockets; use --tcp on this platform".into(),
        });
    }
    if let Some(addr) = tcp {
        builder = builder.tcp(addr);
    }
    let server = builder.start().map_err(|e| ArgError::Serve {
        message: e.to_string(),
    })?;
    // The command's stdout only prints after shutdown, so announce the
    // listeners on stderr now — scripts wait on this (or on the socket
    // file appearing).
    if let Some(path) = socket {
        eprintln!("mmtag serve: listening on {path}");
    }
    if let Some(addr) = server.tcp_addr() {
        eprintln!("mmtag serve: listening on tcp {addr}");
    }
    let engine = mmtag_sim::serve::Server::engine(&server).clone();
    server.join();
    let s = engine.stats();
    Ok(format!(
        "serve: shut down cleanly — {} requests ({} runs, {} queries, \
         {} sweeps / {} points), {} memory hits, {} disk hits, {} simulated, \
         {} deduplicated, {} rejected, hit ratio {:.3}\n",
        s.requests,
        s.runs,
        s.queries,
        s.sweeps,
        s.sweep_points,
        s.memory_hits,
        s.disk_hits,
        s.sim_runs,
        s.dedup_joined,
        s.rejected,
        s.cache_hit_ratio(),
    ))
}

/// The help text.
pub fn help() -> String {
    "\
mmtag — millimeter-wave backscatter link & network models (HotNets '20)

USAGE: mmtag <command> [--flag value]...

COMMANDS:
  link       evaluate one link        --range-ft 4 --rotation-deg 0
                                      --elements 6 --band-ghz 24
                                      --wiring vanatta|fixed|mirror
  sweep      power/rate vs range      --from-ft 2 --to-ft 12 --points 11
  s11        element S11, both switch states (Fig. 6 anchors)
  inventory  timed multi-tag read     --tags 48 --seed 1
  city       city-scale sharded       --tags 100000 --rounds 10 --seed 1
             inventory (E27/E28)      --shards 4 --speed-mps 1.5
                                      --blockers 4
  locate     scan-based positioning   --range-ft 6 --bearing-deg 20
  energy     batteryless budget       --rate-mbps 1000 --solar-cm2 10
                                      --cap-uf 100
  compare    the §1/§3 systems comparison table
  scenarios  list every registered experiment (E1–E31)
  run        run a scenario by name   run e02-link-budget
                                      --format table|csv|json
                                      --quick 1 --seed 7
                                      --no-cache  recompute even when the
                                      run cache (MMTAG_CACHE_DIR, default
                                      target/mmtag-run-cache) has the spec
  serve      simulation daemon        --socket /tmp/mmtag.sock
             (line-delimited JSON     --tcp 127.0.0.1:7117
             over unix/tcp sockets;   --executors 2 --job-threads 2
             stops on a shutdown op)  --queue-cap 64 --memory-cap 256
                                      --no-cache  run without the disk cache
                                      --cache-max-bytes N  evict LRU past N
                                      --cache-max-age SECS expire old entries
                                      (0 = unbounded; amortized on store)
  help       this text

GLOBAL FLAGS:
  --trace <file>   record span timings and write Chrome tracing JSON
                   (open at chrome://tracing); output bytes are unchanged
                   (on `run`, implies --no-cache so the execution spans
                   actually happen)
"
    .to_string()
}

/// The tag described by `--elements/--band-ghz/--wiring`, via the
/// scenario spec layer.
fn tag_spec(args: &Args) -> Result<TagSpec, ArgError> {
    Ok(TagSpec {
        elements: args.usize_or("elements", 6)?,
        band_ghz: args.f64_or("band-ghz", 24.0)?,
        wiring: WiringSpec::parse(&args.str_or("wiring", "vanatta")),
    })
}

/// The reader retuned to `--band-ghz`, via the scenario spec layer.
fn reader_spec(args: &Args) -> Result<ReaderSpec, ArgError> {
    Ok(ReaderSpec::at_band(args.f64_or("band-ghz", 24.0)?))
}

fn cmd_link(args: &Args) -> Result<String, ArgError> {
    let range = args.f64_or("range-ft", 4.0)?;
    let rotation = args.f64_or("rotation-deg", 0.0)?;
    let tag = build_tag(&tag_spec(args)?);
    let reader = build_reader(&reader_spec(args)?);
    let scene = build_scene(&SceneSpec::free_space());
    let (rp, tp) = offset_poses(range, rotation, 0.0);
    let report = evaluate_link(&reader, &tag, &scene, rp, tp);

    let mut out = String::new();
    let _ = writeln!(out, "link @ {range} ft, tag rotated {rotation}°:");
    match report.power {
        Some(p) => {
            let _ = writeln!(out, "  received power : {p}");
            if let Some(rung) = reader.adaptation().best_rung(p) {
                let snr = reader.noise().snr(p, rung.bandwidth);
                let _ = writeln!(out, "  bandwidth rung : {}", rung.bandwidth);
                let _ = writeln!(out, "  SNR            : {snr}");
            }
            let _ = writeln!(out, "  rate           : {}", report.rate);
        }
        None => {
            let _ = writeln!(out, "  (link blocked)");
        }
    }
    Ok(out)
}

fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    let from = args.f64_or("from-ft", 2.0)?;
    let to = args.f64_or("to-ft", 12.0)?;
    let points = args.usize_or("points", 11)?;
    let tag = build_tag(&tag_spec(args)?);
    let reader = build_reader(&reader_spec(args)?);
    let scene = build_scene(&SceneSpec::free_space());

    let mut out = String::from("range_ft  power_dbm  rate\n");
    for feet in linspace(from, to, points) {
        let (rp, tp) = offset_poses(feet, 0.0, 0.0);
        let r = evaluate_link(&reader, &tag, &scene, rp, tp);
        let p = r
            .power
            .map(|p| format!("{:>8.2}", p.dbm()))
            .unwrap_or_else(|| " blocked".into());
        let _ = writeln!(out, "{feet:>8.2}  {p}  {}", r.rate);
    }
    Ok(out)
}

fn cmd_s11(_args: &Args) -> Result<String, ArgError> {
    let e = ElementPort::mmtag_default();
    let f0 = Frequency::from_ghz(24.0);
    let mut out = String::from("element S11 at the 24 GHz carrier:\n");
    let _ = writeln!(
        out,
        "  switch off (reflective): {:>6.1} dB   (paper: ≈ −15 dB)",
        e.s11_db(f0, SwitchState::Off)
    );
    let _ = writeln!(
        out,
        "  switch on  (absorbing) : {:>6.1} dB   (paper: ≈ −5 dB)",
        e.s11_db(f0, SwitchState::On)
    );
    let _ = writeln!(out, "  −10 dB bandwidth       : {}", e.matched_bandwidth());
    Ok(out)
}

fn cmd_inventory(args: &Args) -> Result<String, ArgError> {
    let n = args.usize_or("tags", 48)?;
    let seed = args.u64_or("seed", 1)?;
    let mut net = Network::new(
        build_scene(&SceneSpec::free_space()),
        build_reader(&ReaderSpec::mmtag_setup()),
        Pose::new(Vec2::ORIGIN, Angle::ZERO),
    );
    for i in 0..n {
        let deg = -55.0 + 110.0 * i as f64 / (n.max(2) - 1) as f64;
        let (_, tp) = offset_poses(6.0, 0.0, deg);
        net.add_tag(
            build_tag(&TagSpec::prototype()),
            mmtag_sim::mobility::Static(tp),
        );
    }
    let mut rng = Xoshiro256pp::seed_from(seed);
    let inv = net.inventory(&mut rng);
    let mut out = String::new();
    let _ = writeln!(out, "inventory of {n} tags (seed {seed}):");
    let _ = writeln!(out, "  tags read       : {}", inv.tags_read);
    let _ = writeln!(out, "  sectors visited : {}", inv.sectors_visited);
    let _ = writeln!(out, "  Aloha slots     : {}", inv.slots);
    let _ = writeln!(out, "  elapsed         : {}", inv.elapsed);
    Ok(out)
}

fn cmd_city(args: &Args) -> Result<String, ArgError> {
    let mut cfg = CityConfig::dense(
        args.usize_or("tags", 100_000)?,
        args.usize_or("rounds", 10)?,
    );
    cfg.shards = args.usize_or("shards", cfg.shards)?;
    cfg.speed_mps = args.f64_or("speed-mps", cfg.speed_mps)?;
    cfg.blockers = args.usize_or("blockers", cfg.blockers)?;
    let seed = args.u64_or("seed", 1)?;
    let mut eng = CityEngine::new(cfg, SeedTree::new(seed));
    let stats = eng.run_rounds(mmtag_rf::par::thread_limit());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "city inventory: {} tags, {} readers, {} shards (seed {seed}):",
        cfg.tags,
        cfg.n_readers(),
        cfg.shards
    );
    let _ = writeln!(out, "  rounds          : {}", stats.rounds);
    let _ = writeln!(
        out,
        "  tags read       : {} ({:.1}%)",
        stats.tags_read,
        100.0 * stats.tags_read as f64 / cfg.tags as f64
    );
    let _ = writeln!(out, "  Aloha slots     : {}", stats.slots);
    let _ = writeln!(out, "  DES events      : {}", stats.events);
    let _ = writeln!(out, "  collisions      : {}", stats.collisions);
    let _ = writeln!(out, "  elapsed (sim)   : {}", stats.elapsed);
    Ok(out)
}

fn cmd_locate(args: &Args) -> Result<String, ArgError> {
    let range = args.f64_or("range-ft", 6.0)?;
    let bearing = args.f64_or("bearing-deg", 20.0)?;
    let reader = build_reader(&ReaderSpec::mmtag_setup());
    let tag = build_tag(&TagSpec::prototype());
    let scene = build_scene(&SceneSpec::free_space());
    let (rp, tp) = offset_poses(range, 0.0, bearing);
    let mut out = String::new();
    match locate(&reader, &tag, &scene, rp, tp) {
        Some(est) => {
            let _ = writeln!(out, "truth    : {range:.2} ft @ {bearing:.1}°");
            let _ = writeln!(
                out,
                "estimate : {:.2} ft @ {:.1}°",
                est.range.feet(),
                est.bearing.degrees()
            );
            let _ = writeln!(out, "error    : {:.2} ft", position_error(&est, tp).feet());
        }
        None => {
            let _ = writeln!(out, "tag inaudible in every beam (out of sector?)");
        }
    }
    Ok(out)
}

fn cmd_energy(args: &Args) -> Result<String, ArgError> {
    let rate = DataRate::from_mbps(args.f64_or("rate-mbps", 1000.0)?);
    let solar = Harvester::IndoorSolar {
        area_cm2: args.f64_or("solar-cm2", 10.0)?,
    };
    let cap = StorageCap::new(args.f64_or("cap-uf", 100.0)? * 1e-6, 1.8, 3.3);
    let budget = EnergyBudget::for_tag(&build_tag(&TagSpec::prototype()), rate);

    let mut out = String::new();
    let _ = writeln!(out, "energy budget at {rate}:");
    let _ = writeln!(
        out,
        "  active power     : {:.1} µW  ({:.0}× under a 1 W active radio)",
        budget.active_w() * 1e6,
        advantage_over_active_radio(&budget)
    );
    match steady_state_cycle(&budget, solar, &cap) {
        Some(cycle) => {
            let _ = writeln!(
                out,
                "  sustainable duty : {:.1}% on {:.0} µW {}",
                cycle.duty_cycle * 100.0,
                solar.power_w() * 1e6,
                solar.name()
            );
            let _ = writeln!(out, "  burst length     : {}", cycle.burst);
            let _ = writeln!(
                out,
                "  sustained rate   : {}",
                DataRate::from_bps(rate.bps() * cycle.duty_cycle)
            );
        }
        None => {
            let _ = writeln!(out, "  harvester cannot sustain the logic: tag stays dark");
        }
    }
    Ok(out)
}

fn cmd_compare() -> String {
    let rows = comparison_rows(
        &build_reader(&ReaderSpec::mmtag_setup()),
        &build_tag(&TagSpec::prototype()),
    );
    let mut out = String::from("system                    rate@4ft      rate@10ft     mobility\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24}  {:>11}  {:>12}  {}",
            r.name,
            r.rate_short.to_string(),
            r.rate_10ft.to_string(),
            if r.supports_mobility { "yes" } else { "no" }
        );
    }
    out
}

fn cmd_scenarios() -> String {
    let mut out = String::new();
    for s in registry().iter() {
        let _ = writeln!(out, "{:18} {}", s.spec().name, s.spec().title);
    }
    out
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    let Some(name) = args.operand.as_deref() else {
        return Err(ArgError::MissingValue("<scenario name>".into()));
    };
    let reg = registry();
    let Some(s) = reg.get(name) else {
        return Err(ArgError::UnknownName(name.to_string()));
    };
    let reseeded = args
        .options
        .get("seed")
        .map(|_| -> Result<_, ArgError> {
            let seed = args.u64_or("seed", 0)?;
            Ok(s.with_spec(s.spec().clone().with_seed(seed)))
        })
        .transpose()?;
    let s = reseeded.as_deref().unwrap_or(s);
    // Identical specs replay from the content-addressed run cache unless
    // the user opts out; --trace implies --no-cache because a cache hit
    // skips the execution spans the trace exists to record.
    let cached = !args.options.contains_key("no-cache") && !args.options.contains_key("trace");
    let runner = if cached {
        Runner::new().with_cache(mmtag_sim::cache::RunCache::at_default_dir())
    } else {
        Runner::new()
    };
    let record = if args.usize_or("quick", 0)? != 0 {
        runner.run_minimized(s, 3, 200)
    } else {
        runner.run(s)
    };
    match args.str_or("format", "table").as_str() {
        "csv" => Ok(record.to_csv()),
        "json" => Ok(record.to_json() + "\n"),
        _ => Ok(record.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points the run cache at a fresh per-process temp directory so the
    /// `run` goldens can never be satisfied by stale entries a previous
    /// build left in `target/mmtag-run-cache` — each test process proves
    /// the current code (first run) and the replay path (second run).
    fn isolate_cache_dir() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let dir =
                std::env::temp_dir().join(format!("mmtag-cli-test-cache-{}", std::process::id()));
            std::env::set_var("MMTAG_CACHE_DIR", dir);
        });
    }

    fn run_line(line: &[&str]) -> String {
        isolate_cache_dir();
        run(&Args::parse(line.iter().copied()).unwrap()).unwrap()
    }

    fn run_err(line: &[&str]) -> ArgError {
        isolate_cache_dir();
        match Args::parse(line.iter().copied()) {
            Err(e) => e,
            Ok(a) => run(&a).unwrap_err(),
        }
    }

    // ---- seeded golden outputs: the exact bytes each command prints ----
    // The model stack is deterministic, so these pin the full command
    // surface; a diff here means user-visible output changed.
    //
    // Sampler note: checked against Gaussian sampler v2 (batch Box–Muller,
    // both branches — see `golden_noise_stream_sampler_v2` in mmtag_rf).
    // These commands survive v1→v2 unchanged because none consume the
    // Gaussian stream: link/sweep/s11/locate are closed-form, and
    // inventory draws only slot indices (`Rng::index`), whose stream the
    // batch kernels replay bit-identically. A future sampler bump that
    // touches uniform or index draws must re-record these bytes.

    #[test]
    fn golden_link() {
        assert_eq!(
            run_line(&["link"]),
            "link @ 4 ft, tag rotated 0°:\n\
             \x20 received power : -66.47 dBm\n\
             \x20 bandwidth rung : 2.0 GHz\n\
             \x20 SNR            : 9.34 dB\n\
             \x20 rate           : 1.00 Gbps\n"
        );
    }

    #[test]
    fn golden_sweep() {
        assert_eq!(
            run_line(&["sweep", "--points", "5"]),
            "range_ft  power_dbm  rate\n\
             \x20   2.00    -54.43  1.00 Gbps\n\
             \x20   4.50    -68.52  1.00 Gbps\n\
             \x20   7.00    -76.20  100.00 Mbps\n\
             \x20   9.50    -81.50  10.00 Mbps\n\
             \x20  12.00    -85.56  10.00 Mbps\n"
        );
    }

    #[test]
    fn golden_s11() {
        assert_eq!(
            run_line(&["s11"]),
            "element S11 at the 24 GHz carrier:\n\
             \x20 switch off (reflective):  -15.0 dB   (paper: ≈ −15 dB)\n\
             \x20 switch on  (absorbing) :   -5.2 dB   (paper: ≈ −5 dB)\n\
             \x20 −10 dB bandwidth       : 540.0 MHz\n"
        );
    }

    #[test]
    fn golden_inventory() {
        assert_eq!(
            run_line(&["inventory", "--tags", "12", "--seed", "7"]),
            "inventory of 12 tags (seed 7):\n\
             \x20 tags read       : 12\n\
             \x20 sectors visited : 12\n\
             \x20 Aloha slots     : 192\n\
             \x20 elapsed         : 697.280 µs\n"
        );
    }

    #[test]
    fn golden_locate() {
        assert_eq!(
            run_line(&["locate"]),
            "truth    : 6.00 ft @ 20.0°\n\
             estimate : 6.27 ft @ 19.9°\n\
             error    : 0.27 ft\n"
        );
    }

    // ---- error paths ----

    #[test]
    fn malformed_number_is_a_bad_value_error() {
        assert_eq!(
            run_err(&["link", "--range-ft", "abc"]),
            ArgError::BadValue {
                flag: "range-ft".into(),
                raw: "abc".into()
            }
        );
    }

    #[test]
    fn dangling_flag_is_a_missing_value_error() {
        assert_eq!(
            run_err(&["sweep", "--points"]),
            ArgError::MissingValue("points".into())
        );
    }

    #[test]
    fn stray_operand_is_rejected_outside_run() {
        assert_eq!(
            run_err(&["link", "oops"]),
            ArgError::UnexpectedPositional("oops".into())
        );
    }

    #[test]
    fn run_requires_a_known_scenario() {
        assert_eq!(
            run_err(&["run", "nope"]),
            ArgError::UnknownName("nope".into())
        );
        assert!(matches!(run_err(&["run"]), ArgError::MissingValue(_)));
    }

    // ---- the scenario pipeline commands ----

    #[test]
    fn scenarios_lists_all_31() {
        let out = run_line(&["scenarios"]);
        assert_eq!(out.lines().count(), 31);
        assert!(out.starts_with("e01-s11"));
        assert!(out.contains("e26-cancellation"));
        assert!(out.contains("e27-city-density"));
        assert!(out.contains("e28-city-mobility"));
        assert!(out.contains("e29-rate-region"));
        assert!(out.contains("e30-rate-vs-tags"));
        assert!(out.contains("e31-rate-vs-states"));
    }

    #[test]
    fn city_inventory_runs_and_is_deterministic() {
        let line = [
            "city",
            "--tags",
            "400",
            "--rounds",
            "6",
            "--blockers",
            "0",
            "--seed",
            "9",
        ];
        let a = run_line(&line);
        let b = run_line(&line);
        assert_eq!(a, b, "city output must be deterministic per seed");
        assert!(a.starts_with("city inventory: 400 tags"));
        assert!(a.contains("tags read"));
        assert!(a.contains("DES events"));
    }

    #[test]
    fn run_matches_the_registry_record() {
        let out = run_line(&["run", "e06-beamwidth"]);
        let record = registry().run("e06-beamwidth", &Runner::new()).unwrap();
        assert_eq!(out, record.render());
    }

    #[test]
    fn run_quick_and_formats_work() {
        let csv = run_line(&["run", "e06-beamwidth", "--format", "csv", "--quick", "1"]);
        assert!(csv.starts_with("# scenario=e06-beamwidth"));
        assert_eq!(csv.lines().filter(|l| !l.starts_with('#')).count(), 4); // header + 3 rows
        let json = run_line(&["run", "e06-beamwidth", "--format", "json", "--quick", "1"]);
        assert!(json.contains("\"manifest\"") && json.contains("\"e06-beamwidth\""));
    }

    #[test]
    fn cached_and_uncached_runs_print_identical_bytes() {
        // First call populates the cache, second replays from it, and
        // --no-cache recomputes — all three must print the same bytes
        // (wall_ms lives in the manifest, which `render` omits).
        let first = run_line(&["run", "e06-beamwidth", "--quick", "1"]);
        let replayed = run_line(&["run", "e06-beamwidth", "--quick", "1"]);
        let recomputed = run_line(&["run", "e06-beamwidth", "--quick", "1", "--no-cache"]);
        assert_eq!(first, replayed);
        assert_eq!(first, recomputed);
        // The JSON metrics block reports which path served the run.
        let json = run_line(&["run", "e06-beamwidth", "--format", "json", "--quick", "1"]);
        assert!(json.contains("\"runner.cache.hit\": 1"), "{json}");
        let bypassed = run_line(&[
            "run",
            "e06-beamwidth",
            "--format",
            "json",
            "--quick",
            "1",
            "--no-cache",
        ]);
        assert!(!bypassed.contains("runner.cache."), "{bypassed}");
    }

    #[test]
    fn run_seed_override_reaches_the_spec() {
        let a = run_line(&["run", "e21-capture", "--quick", "1"]);
        let b = run_line(&["run", "e21-capture", "--quick", "1", "--seed", "999"]);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_flag_writes_chrome_json_without_changing_output() {
        let path = std::env::temp_dir()
            .join("mmtag-cli-trace-test.json")
            .to_string_lossy()
            .to_string();
        let untraced = run_line(&["run", "e05-ber", "--quick", "1"]);
        let traced = run_line(&["run", "e05-ber", "--quick", "1", "--trace", &path]);
        // Tracing must never change command output.
        assert_eq!(untraced, traced);
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("runner.trials"), "{trace}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_trace_path_is_a_trace_write_error() {
        let err = run_err(&[
            "s11",
            "--trace",
            "/nonexistent-dir-for-mmtag-test/trace.json",
        ]);
        assert!(matches!(err, ArgError::TraceWrite { .. }), "{err:?}");
    }

    #[test]
    fn sweep_with_one_point_emits_one_row() {
        let out = run_line(&["sweep", "--points", "1"]);
        assert_eq!(out.lines().count(), 2, "{out}"); // header + 1 row
        assert!(out.contains("2.00"), "{out}");
    }

    #[test]
    fn sweep_with_zero_points_is_header_only() {
        let out = run_line(&["sweep", "--points", "0"]);
        assert_eq!(out, "range_ft  power_dbm  rate\n");
    }

    #[test]
    fn link_defaults_hit_the_paper_anchor() {
        let out = run_line(&["link"]);
        assert!(out.contains("1.00 Gbps"), "{out}");
    }

    #[test]
    fn link_at_10ft_is_10mbps() {
        let out = run_line(&["link", "--range-ft", "10"]);
        assert!(out.contains("10.00 Mbps"), "{out}");
    }

    #[test]
    fn rotated_link_still_works() {
        let out = run_line(&["link", "--rotation-deg", "40"]);
        assert!(out.contains("Mbps") || out.contains("Gbps"), "{out}");
    }

    #[test]
    fn sweep_has_requested_points() {
        let out = run_line(&["sweep", "--from-ft", "2", "--to-ft", "12", "--points", "6"]);
        assert_eq!(out.lines().count(), 7, "{out}"); // header + 6 rows
        assert!(out.contains("1.00 Gbps") && out.contains("10.00 Mbps"));
    }

    #[test]
    fn s11_shows_both_states() {
        let out = run_line(&["s11"]);
        assert!(out.contains("switch off") && out.contains("switch on"));
        assert!(out.contains("-15.0") || out.contains("-14."), "{out}");
    }

    #[test]
    fn inventory_reads_everyone() {
        let out = run_line(&["inventory", "--tags", "12", "--seed", "7"]);
        assert!(out.contains("tags read       : 12"), "{out}");
    }

    #[test]
    fn locate_reports_small_error() {
        let out = run_line(&["locate", "--range-ft", "5", "--bearing-deg", "15"]);
        assert!(out.contains("error"), "{out}");
        let err_line = out.lines().find(|l| l.contains("error")).unwrap();
        let err: f64 = err_line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches(" ft")
            .parse()
            .unwrap();
        assert!(err < 2.0, "{out}");
    }

    #[test]
    fn energy_shows_duty_cycle() {
        let out = run_line(&["energy"]);
        assert!(out.contains("sustainable duty"), "{out}");
        assert!(out.contains("µW"));
    }

    #[test]
    fn compare_lists_all_six_systems() {
        let out = run_line(&["compare"]);
        for name in ["RFID", "HitchHike", "BackFi", "mmTag"] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn unknown_command_prints_help() {
        let out = run_line(&["frobnicate"]);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn fixed_wiring_dies_off_axis() {
        let va = run_line(&["link", "--rotation-deg", "30"]);
        let fb = run_line(&["link", "--rotation-deg", "30", "--wiring", "fixed"]);
        assert!(va.contains("100.00 Mbps"), "{va}");
        assert!(!fb.contains("100.00 Mbps") && !fb.contains("Gbps"), "{fb}");
    }

    #[test]
    fn sixty_ghz_band_flag_works() {
        let out = run_line(&["link", "--band-ghz", "60", "--range-ft", "2"]);
        assert!(out.contains("Mbps") || out.contains("Gbps"), "{out}");
    }
}
