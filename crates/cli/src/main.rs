//! `mmtag` — the command-line face of the mmTag model stack.
//!
//! See `mmtag help` (or [`commands::help`]) for the command surface. All
//! logic lives in [`commands`] as pure functions; this binary only parses
//! `std::env::args`, dispatches, prints, and sets the exit code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
