//! Tiny dependency-free argument parser for the `mmtag` CLI.
//!
//! Supports `--flag value` and `--flag=value` options plus one positional
//! subcommand, and a small fixed set of valueless boolean flags
//! ([`BOOL_FLAGS`]). Deliberately minimal (the allowed dependency set has
//! no `clap`); the parser is a plain data structure so every command's
//! argument handling is unit-testable without process spawning.

use std::collections::BTreeMap;

/// Flags that take no value: presence stores `"1"` in the option map.
/// Kept as an explicit list so `--flag` with a forgotten value keeps
/// erroring for every value-carrying flag.
pub const BOOL_FLAGS: &[&str] = &["no-cache"];

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Args {
    /// The subcommand (first positional argument), if any.
    pub command: Option<String>,
    /// A second positional operand (only `run <scenario>` uses one).
    pub operand: Option<String>,
    /// Option map: `--range 4` → `("range", "4")`.
    pub options: BTreeMap<String, String>,
}

/// Errors from parsing or extracting arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared with no value.
    MissingValue(String),
    /// A value failed to parse as the requested type.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        raw: String,
    },
    /// Something that is neither the subcommand nor a flag appeared.
    UnexpectedPositional(String),
    /// A scenario name that is not in the registry.
    UnknownName(String),
    /// The `--trace` output file could not be written.
    TraceWrite {
        /// The path given to `--trace`.
        path: String,
        /// The I/O error text.
        message: String,
    },
    /// The `serve` daemon could not start or was misconfigured.
    Serve {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::BadValue { flag, raw } => {
                write!(f, "--{flag}: cannot parse '{raw}' as a number")
            }
            ArgError::UnexpectedPositional(s) => write!(f, "unexpected argument '{s}'"),
            ArgError::UnknownName(s) => {
                write!(f, "unknown scenario '{s}' (see `mmtag scenarios`)")
            }
            ArgError::TraceWrite { path, message } => {
                write!(f, "cannot write trace file '{path}': {message}")
            }
            ArgError::Serve { message } => write!(f, "serve: {message}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse<I, S>(args: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                if let Some((k, v)) = flag.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if BOOL_FLAGS.contains(&flag) {
                    out.options.insert(flag.to_string(), "1".to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(flag.to_string()))?;
                    if value.starts_with("--") {
                        return Err(ArgError::MissingValue(flag.to_string()));
                    }
                    out.options.insert(flag.to_string(), value);
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else if out.operand.is_none() {
                out.operand = Some(arg);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(out)
    }

    /// A float option with a default.
    pub fn f64_or(&self, flag: &str, default: f64) -> Result<f64, ArgError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                raw: raw.clone(),
            }),
        }
    }

    /// An integer option with a default.
    pub fn usize_or(&self, flag: &str, default: usize) -> Result<usize, ArgError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                raw: raw.clone(),
            }),
        }
    }

    /// A u64 option with a default (seeds).
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                raw: raw.clone(),
            }),
        }
    }

    /// A string option with a default.
    pub fn str_or(&self, flag: &str, default: &str) -> String {
        self.options
            .get(flag)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(["link", "--range", "4", "--elements", "6"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("link"));
        assert_eq!(a.f64_or("range", 0.0).unwrap(), 4.0);
        assert_eq!(a.usize_or("elements", 0).unwrap(), 6);
    }

    #[test]
    fn equals_syntax_works() {
        let a = Args::parse(["scan", "--beamwidth=10.5"]).unwrap();
        assert_eq!(a.f64_or("beamwidth", 0.0).unwrap(), 10.5);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(["link"]).unwrap();
        assert_eq!(a.f64_or("range", 4.0).unwrap(), 4.0);
        assert_eq!(a.str_or("band", "24ghz"), "24ghz");
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            Args::parse(["link", "--range"]),
            Err(ArgError::MissingValue("range".into()))
        );
        assert_eq!(
            Args::parse(["link", "--range", "--elements"]),
            Err(ArgError::MissingValue("range".into()))
        );
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(["link", "--range", "abc"]).unwrap();
        assert!(matches!(
            a.f64_or("range", 0.0),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn second_positional_is_the_operand_and_a_third_errors() {
        let a = Args::parse(["run", "e02-link-budget"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.operand.as_deref(), Some("e02-link-budget"));
        assert_eq!(
            Args::parse(["run", "e02-link-budget", "oops"]),
            Err(ArgError::UnexpectedPositional("oops".into()))
        );
    }

    #[test]
    fn boolean_flags_need_no_value() {
        // `--no-cache` consumes nothing: a following flag or positional
        // is parsed on its own.
        let a = Args::parse(["run", "e05-ber", "--no-cache", "--quick", "1"]).unwrap();
        assert_eq!(a.operand.as_deref(), Some("e05-ber"));
        assert_eq!(a.options.get("no-cache").map(String::as_str), Some("1"));
        assert_eq!(a.usize_or("quick", 0).unwrap(), 1);
        let b = Args::parse(["run", "e05-ber", "--no-cache"]).unwrap();
        assert!(b.options.contains_key("no-cache"));
    }

    #[test]
    fn no_command_is_fine() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert!(a.command.is_none());
    }

    #[test]
    fn negative_numbers_pass_through() {
        let a = Args::parse(["locate", "--bearing", "-25"]).unwrap();
        assert_eq!(a.f64_or("bearing", 0.0).unwrap(), -25.0);
    }
}
