//! # mmtag-rf — RF foundations for the mmTag stack
//!
//! This crate holds the zero-dependency numerical foundations shared by every
//! layer of the mmTag millimeter-wave backscatter stack:
//!
//! * [`Complex`] — complex arithmetic for phasor/array-factor computation,
//! * [`units`] — strongly-typed physical quantities (frequency, power,
//!   distance, angles, bandwidth, data rate) with explicit conversions,
//! * [`db`] — decibel ↔ linear conversions done once, correctly,
//! * [`fft`] — radix-2 FFT and Welch PSD for spectrum analysis,
//! * [`constants`] — the physical constants the link budget rests on,
//! * [`special`] — `erf`/`erfc`/Q-function needed for BER theory,
//! * [`rng`] — the in-house xoshiro256++ generator, sampler trait and
//!   [`rng::SeedTree`] stream derivation (zero external dependencies),
//! * [`pool`] — the lazily-initialized persistent worker pool (std-only
//!   `Mutex`/`Condvar`, workers spawned once per process and reused),
//! * [`par`] — the deterministic parallel engine every Monte-Carlo hot
//!   path runs on, built on [`pool`] (`MMTAG_THREADS` to override),
//! * [`obs`] — the zero-dependency observability layer (span timers,
//!   counters, histograms, Chrome-trace export) whose recording is sharded
//!   per worker and merged in unit order so it never perturbs results.
//!
//! The numerics are `no_std`-shaped in spirit (no allocation, no I/O); they
//! are the part of the stack you would keep if you ported the models to
//! firmware. `rng`/`par` are the simulation substrate layered on top.

// `deny` rather than `forbid`: the worker pool (`pool`) and the engine's
// in-place result writes (`par`) opt back in with scoped `allow`s and
// per-use SAFETY arguments. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod constants;
pub mod db;
pub mod fft;
pub mod math;
pub mod obs;
pub mod par;
pub mod pool;
pub mod rng;
pub mod special;
pub mod units;

pub use complex::Complex;
pub use units::{
    Angle, Bandwidth, DataRate, Db, Dbi, Dbm, Distance, Frequency, Power, Temperature,
};
