//! Decibel ↔ linear conversions.
//!
//! Link-budget code is dominated by dB arithmetic; getting a factor of 10/20
//! wrong is the classic RF bug. These four free functions are the only place
//! in the library where the conversion appears, and the typed wrappers in
//! [`crate::units`] build on them.

/// Converts a linear *power* ratio to decibels: `10·log10(x)`.
///
/// Returns `-inf` for `x == 0` (a perfectly valid "no signal" value in link
/// budgets) and NaN for negative input.
#[inline]
pub fn lin_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Converts decibels to a linear *power* ratio: `10^(x/10)`.
#[inline]
pub fn db_to_lin(x: f64) -> f64 {
    10f64.powf(x / 10.0)
}

/// Converts a linear *amplitude* (voltage/field) ratio to decibels:
/// `20·log10(x)`.
#[inline]
pub fn amplitude_to_db(x: f64) -> f64 {
    20.0 * x.log10()
}

/// Converts decibels to a linear *amplitude* ratio: `10^(x/20)`.
#[inline]
pub fn db_to_amplitude(x: f64) -> f64 {
    10f64.powf(x / 20.0)
}

/// Converts power in milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    lin_to_db(mw)
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_lin(dbm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_anchors() {
        assert!((lin_to_db(1.0)).abs() < 1e-12);
        assert!((lin_to_db(10.0) - 10.0).abs() < 1e-12);
        assert!((lin_to_db(2.0) - 3.0103).abs() < 1e-4);
        assert!((lin_to_db(0.5) + 3.0103).abs() < 1e-4);
    }

    #[test]
    fn amplitude_anchors() {
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((amplitude_to_db(2.0) - 6.0206).abs() < 1e-4);
    }

    #[test]
    fn paper_tx_power_20mw_is_13dbm() {
        // §7: "The reader's peak transmission power is set to 20 milliwatt".
        assert!((mw_to_dbm(20.0) - 13.0103).abs() < 1e-4);
    }

    #[test]
    fn zero_power_is_negative_infinity() {
        assert_eq!(lin_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(db_to_lin(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn roundtrips() {
        for x in [1e-9, 1e-3, 1.0, 42.0, 1e6] {
            assert!((db_to_lin(lin_to_db(x)) - x).abs() / x < 1e-12);
            assert!((db_to_amplitude(amplitude_to_db(x)) - x).abs() / x < 1e-12);
        }
    }
}
