//! A lazily-initialized, process-wide persistent worker pool — std-only
//! (`Mutex` + `Condvar`), created once, reused by every `par_*` call.
//!
//! ## Why a pool
//!
//! The first-generation engine in [`crate::par`] spawned scoped threads
//! per call. That is correct but pays thread creation + teardown on every
//! parallel region, which dominates when the per-unit work is small (the
//! committed bench report showed parallel BER sweeps running *slower*
//! than serial). This pool spawns workers on first use and parks them on
//! a condition variable between jobs, so the steady-state cost of a
//! parallel region is one mutex lock, one list push, and one wakeup.
//!
//! ## How a job runs
//!
//! [`run`] publishes a *job node* — a pointer to the caller's closure
//! plus two counters — on a global list, wakes the workers, and then
//! **participates itself**: the submitting thread executes the same
//! closure, so `threads == 2` means the caller plus one pool worker, and
//! forward progress never depends on pool threads existing at all. The
//! closure is a *claim loop*: every participant races on the caller's
//! atomic unit counter until the units are exhausted (see
//! [`crate::par::par_indexed_scratch_with`]), so it is safe — and
//! expected — that any subset of the invited workers shows up.
//!
//! `slots` counts how many pool workers may still join the job; `active`
//! counts participants currently inside the closure. The caller waits
//! (on the `done` condvar) until `active` drops to zero after zeroing
//! `slots`, which guarantees the closure reference and the caller's
//! stack frame outlive every borrow a worker holds.
//!
//! ## Safety argument
//!
//! The job node lives on the caller's stack and is shared with workers
//! as a raw pointer. All accesses to the node's mutable fields happen
//! with the pool mutex held; the closure itself is `Fn + Sync`, so
//! concurrent shared calls are sound. The caller cannot return before
//! `active == 0` **and** the node has been unlinked from the list, so no
//! worker can observe a dangling node or closure. Panics inside the
//! closure are caught per-participant and re-thrown exactly once on the
//! calling thread.
//!
//! Nested use is allowed: a worker that calls [`run`] from inside a job
//! simply publishes a second node and claims units of the inner job
//! itself; idle workers (if any) join it, and the waiting inner caller
//! holds no lock, so there is no lock-ordering cycle and no deadlock
//! when every worker is busy.

#![allow(unsafe_code)] // see the safety argument above; crate default is deny

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// The closure type workers execute. The `'static` here is a lie told to
/// the type system only — [`run`] erases the caller's lifetime and then
/// enforces it manually by blocking until every participant has left.
type Work = dyn Fn() + Sync;

/// One published parallel region. Lives on the submitting thread's
/// stack; shared with workers by pointer, mutated only under the pool
/// mutex.
struct JobNode {
    work: *const Work,
    /// Pool workers still allowed to join. Decremented on claim; zeroed
    /// by the caller to close the job to new participants.
    slots: usize,
    /// Participants (pool workers only — the caller tracks itself)
    /// currently inside `work`.
    active: usize,
    /// First worker panic, re-thrown by the caller.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

struct State {
    /// Open jobs, oldest first. Nodes are caller-owned; entries are
    /// removed by the same caller that pushed them.
    jobs: Vec<*mut JobNode>,
    /// Workers spawned so far (they never exit).
    workers: usize,
}

// SAFETY: the raw pointers in `jobs` are only ever dereferenced while
// the surrounding mutex is held, and point to nodes kept alive by their
// publishing callers until removal (see module docs).
unsafe impl Send for State {}

struct Pool {
    state: Mutex<State>,
    /// Signaled when a job with open slots is published.
    work_ready: Condvar,
    /// Signaled when a job's `active` count returns to zero.
    done: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            jobs: Vec::new(),
            workers: 0,
        }),
        work_ready: Condvar::new(),
        done: Condvar::new(),
    })
}

/// Workers spawned so far in this process. Diagnostic only — exposed so
/// tests can assert the pool is actually reused instead of regrowing.
pub fn worker_count() -> usize {
    pool().state.lock().unwrap().workers
}

/// Spawns pool workers until at least `n` exist, without publishing any
/// work. Idempotent; never shrinks the pool.
///
/// Only threads *inside* [`run`] participate in jobs: a pool slot is
/// something a worker claims from a published job node, not a property a
/// thread holds. A service thread that never calls [`run`] — a socket
/// acceptor parked in `accept`, a connection handler blocked in `read` —
/// is therefore invisible to the pool and can never be counted as a
/// worker or steal a slot from a running job. Long-running daemons call
/// this at startup so the first real job doesn't pay worker-spawn
/// latency, and so their compute budget (`n` pool workers + the one
/// executor thread that calls [`run`]) is explicit and separate from
/// their I/O thread count.
pub fn ensure_workers(n: usize) {
    let p = pool();
    let mut st = p.state.lock().unwrap();
    spawn_up_to(&mut st, p, n);
}

/// Spawns workers (they never exit) until `target` exist. Caller holds
/// the state lock.
fn spawn_up_to(st: &mut State, p: &'static Pool, target: usize) {
    while st.workers < target {
        st.workers += 1;
        let id = st.workers;
        std::thread::Builder::new()
            .name(format!("mmtag-pool-{id}"))
            .spawn(move || worker_loop(p))
            .expect("spawning a pool worker");
    }
}

fn worker_loop(p: &'static Pool) {
    let mut st = p.state.lock().unwrap();
    loop {
        // Oldest job with open slots first: inner (nested) jobs are
        // pushed later, but their callers are themselves participants,
        // so helping the oldest job cannot stall a newer one.
        let open = st
            .jobs
            .iter()
            .copied()
            // SAFETY: mutex held; nodes alive while listed.
            .find(|&j| unsafe { (*j).slots > 0 });
        let Some(job) = open else {
            st = p.work_ready.wait(st).unwrap();
            continue;
        };
        // SAFETY: mutex held for the counter updates; the work pointer
        // stays valid until the caller sees `active == 0`.
        let work = unsafe {
            (*job).slots -= 1;
            (*job).active += 1;
            (*job).work
        };
        drop(st);
        // SAFETY: the caller blocks until this participant leaves, so
        // the closure (and everything it borrows) is still alive.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*work)() }));
        st = p.state.lock().unwrap();
        // SAFETY: mutex re-held; the node is still listed because the
        // caller cannot unlink it while `active > 0`.
        unsafe {
            if let Err(payload) = result {
                if (*job).panic.is_none() {
                    (*job).panic = Some(payload);
                }
            }
            (*job).active -= 1;
            if (*job).active == 0 {
                p.done.notify_all();
            }
        }
    }
}

/// Runs `work` on the calling thread **and** up to `extra_workers` pool
/// workers concurrently, returning once every participant has finished.
/// Workers are spawned on demand (never torn down); `extra_workers == 0`
/// degenerates to a plain call with panic-unwind semantics preserved.
///
/// `work` must be a claim loop: participants pull work units from shared
/// state owned by the caller and exit when none remain. Any participant
/// panic is re-thrown here after all participants have left.
pub fn run(extra_workers: usize, work: &(dyn Fn() + Sync)) {
    if extra_workers == 0 {
        work();
        return;
    }
    let p = pool();
    // SAFETY: erases the closure's borrow lifetime. Sound because this
    // function does not return until the node is unlinked and no worker
    // is inside the closure (`active == 0` below).
    let work_static: *const Work = unsafe { std::mem::transmute(work as *const _) };
    let node = UnsafeCell::new(JobNode {
        work: work_static,
        slots: extra_workers,
        active: 0,
        panic: None,
    });
    {
        let mut st = p.state.lock().unwrap();
        spawn_up_to(&mut st, p, extra_workers);
        st.jobs.push(node.get());
        if extra_workers == 1 {
            p.work_ready.notify_one();
        } else {
            p.work_ready.notify_all();
        }
    }
    // The caller is a participant too — total parallelism is
    // `extra_workers + 1`, and the region completes even if every pool
    // worker is busy elsewhere.
    let own = catch_unwind(AssertUnwindSafe(work));
    let worker_panic = {
        let mut st = p.state.lock().unwrap();
        // SAFETY: mutex held; the node outlives this scope by
        // construction (it is this frame's local).
        unsafe {
            // Close the job: late workers must not join a region whose
            // caller has already finished its share.
            (*node.get()).slots = 0;
            while (*node.get()).active > 0 {
                st = p.done.wait(st).unwrap();
            }
        }
        let ptr = node.get();
        let pos = st
            .jobs
            .iter()
            .position(|&j| j == ptr)
            .expect("published job still listed");
        st.jobs.remove(pos);
        // SAFETY: unlinked and quiescent — this thread owns the node again.
        unsafe { (*node.get()).panic.take() }
    };
    if let Err(payload) = own {
        std::panic::resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn caller_participates_even_without_free_workers() {
        // extra_workers == 0: the closure still runs exactly once.
        let hits = AtomicUsize::new(0);
        run(0, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn all_units_complete_and_workers_are_reused() {
        let drain = |n: usize, extra: usize| {
            let next = AtomicUsize::new(0);
            let sum = AtomicUsize::new(0);
            run(extra, &|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        };
        let expect = |n: usize| n * (n + 1) / 2;
        for round in 0..3 {
            for extra in [1usize, 3, 7] {
                assert_eq!(drain(500, extra), expect(500), "round={round}");
            }
        }
        // Repeated calls at the same budget must not regrow the pool.
        let before = worker_count();
        for _ in 0..10 {
            assert_eq!(drain(100, 3), expect(100));
        }
        assert_eq!(worker_count(), before, "pool regrew across calls");
    }

    #[test]
    fn nested_jobs_complete() {
        // Each outer unit publishes an inner job; both levels are claim
        // loops, so the work totals are exact no matter how many pool
        // workers actually show up for either level.
        let total = AtomicUsize::new(0);
        let outer_next = AtomicUsize::new(0);
        run(2, &|| loop {
            let o = outer_next.fetch_add(1, Ordering::Relaxed);
            if o >= 4 {
                break;
            }
            let inner_next = AtomicUsize::new(0);
            run(2, &|| loop {
                let i = inner_next.fetch_add(1, Ordering::Relaxed);
                if i >= 32 {
                    break;
                }
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 32);
    }

    #[test]
    fn ensure_workers_pre_spawns_without_work() {
        ensure_workers(2);
        assert!(worker_count() >= 2);
        let before = worker_count();
        ensure_workers(1); // never shrinks
        assert_eq!(worker_count(), before);
        // The pre-spawned workers are the ones jobs use — no regrowth
        // when a job asks for what ensure_workers already provided.
        let next = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        run(2, &|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= 100 {
                break;
            }
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100 * 101 / 2);
        assert_eq!(worker_count(), before);
    }

    #[test]
    fn blocked_service_thread_holds_no_pool_slot() {
        // A thread parked outside `run` — like a daemon's acceptor
        // blocked in `accept`/`read` — must be invisible to the pool:
        // it neither joins jobs nor consumes a slot other participants
        // could have claimed.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let service = std::thread::spawn(move || {
            // Blocks like a socket read until the test is done.
            release_rx.recv().unwrap();
        });
        let before = worker_count();
        // Jobs submitted while the service thread is parked: every unit
        // completes and the pool does not grow on its account.
        for _ in 0..5 {
            let next = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            run(2, &|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= 64 {
                    break;
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(done.load(Ordering::Relaxed), 64);
        }
        assert!(worker_count() >= before);
        release_tx.send(()).unwrap();
        service.join().unwrap();
    }

    #[test]
    fn worker_panic_reaches_the_caller() {
        let next = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            run(3, &|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= 64 {
                    break;
                }
                if i == 13 {
                    panic!("unit 13 failed");
                }
            });
        });
        assert!(result.is_err(), "panic was swallowed");
        // The pool must still be usable after a panicked job.
        let after_next = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        run(2, &|| loop {
            if after_next.fetch_add(1, Ordering::Relaxed) >= 16 {
                break;
            }
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }
}
