//! Strongly-typed physical quantities.
//!
//! Link budgets mix dBm, dB, dBi, feet, meters, GHz and Mbps; untyped `f64`s
//! make it trivially easy to add a power to a frequency. Each quantity here is
//! a transparent newtype over `f64` with explicit constructors and accessors,
//! and only the physically meaningful arithmetic is implemented:
//!
//! * `Dbm + Db = Dbm` (applying gain/loss to an absolute power),
//! * `Dbm − Dbm = Db` (a power ratio),
//! * `Db ± Db = Db` (accumulating gains/losses).
//!
//! The paper reports ranges in feet and powers in dBm; we keep both unit
//! systems as first-class constructors so experiment code reads like the
//! paper.

use crate::db;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

// ---------------------------------------------------------------------------
// Frequency
// ---------------------------------------------------------------------------

/// A frequency, stored in hertz.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Frequency(f64);

impl Frequency {
    /// The 24 GHz ISM-band carrier used by the mmTag prototype (§7).
    pub const MMTAG_CARRIER: Frequency = Frequency(24.0e9);

    /// From hertz.
    pub const fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }
    /// From megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }
    /// From gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }
    /// In hertz.
    pub const fn hz(self) -> f64 {
        self.0
    }
    /// In megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }
    /// In gigahertz.
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }
    /// Free-space wavelength `λ = c / f`.
    pub fn wavelength(self) -> Distance {
        Distance::from_meters(crate::constants::SPEED_OF_LIGHT / self.0)
    }
    /// True if this frequency lies in the mmWave range the paper targets
    /// (24–100 GHz, §2.2).
    pub fn is_mmwave(self) -> bool {
        (24.0e9..=100.0e9).contains(&self.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GHz", self.ghz())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} MHz", self.mhz())
        } else {
            write!(f, "{:.0} Hz", self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Distance
// ---------------------------------------------------------------------------

/// A distance, stored in meters.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Distance(f64);

/// Meters per foot (exact international foot).
const METERS_PER_FOOT: f64 = 0.3048;

impl Distance {
    /// From meters.
    pub const fn from_meters(m: f64) -> Self {
        Distance(m)
    }
    /// From millimeters.
    pub fn from_mm(mm: f64) -> Self {
        Distance(mm * 1e-3)
    }
    /// From feet (the paper's range unit).
    pub fn from_feet(ft: f64) -> Self {
        Distance(ft * METERS_PER_FOOT)
    }
    /// In meters.
    pub const fn meters(self) -> f64 {
        self.0
    }
    /// In millimeters.
    pub fn mm(self) -> f64 {
        self.0 * 1e3
    }
    /// In feet.
    pub fn feet(self) -> f64 {
        self.0 / METERS_PER_FOOT
    }
}

impl Add for Distance {
    type Output = Distance;
    fn add(self, rhs: Distance) -> Distance {
        Distance(self.0 + rhs.0)
    }
}

impl Sub for Distance {
    type Output = Distance;
    fn sub(self, rhs: Distance) -> Distance {
        Distance(self.0 - rhs.0)
    }
}

impl Mul<f64> for Distance {
    type Output = Distance;
    fn mul(self, rhs: f64) -> Distance {
        Distance(self.0 * rhs)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} m", self.0)
    }
}

// ---------------------------------------------------------------------------
// Angle
// ---------------------------------------------------------------------------

/// An angle, stored in radians.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle (broadside / boresight).
    pub const ZERO: Angle = Angle(0.0);

    /// From radians.
    pub const fn from_radians(rad: f64) -> Self {
        Angle(rad)
    }
    /// From degrees.
    pub fn from_degrees(deg: f64) -> Self {
        Angle(deg.to_radians())
    }
    /// In radians.
    pub const fn radians(self) -> f64 {
        self.0
    }
    /// In degrees.
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }
    /// Normalizes into `(-π, π]`.
    pub fn normalized(self) -> Angle {
        let two_pi = std::f64::consts::TAU;
        let mut a = self.0 % two_pi;
        if a <= -std::f64::consts::PI {
            a += two_pi;
        } else if a > std::f64::consts::PI {
            a -= two_pi;
        }
        Angle(a)
    }
    /// Absolute angular separation from `other`, in `[0, π]`.
    pub fn separation(self, other: Angle) -> Angle {
        Angle((self - other).normalized().radians().abs())
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle(self.0 - rhs.0)
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle(-self.0)
    }
}

impl Mul<f64> for Angle {
    type Output = Angle;
    fn mul(self, rhs: f64) -> Angle {
        Angle(self.0 * rhs)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.degrees())
    }
}

// ---------------------------------------------------------------------------
// Power (absolute) and decibel ratios
// ---------------------------------------------------------------------------

/// An absolute power level, stored in dBm.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Dbm(f64);

impl Dbm {
    /// From a dBm value.
    pub const fn new(dbm: f64) -> Self {
        Dbm(dbm)
    }
    /// From milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Dbm(db::mw_to_dbm(mw))
    }
    /// From watts.
    pub fn from_watts(w: f64) -> Self {
        Dbm(db::mw_to_dbm(w * 1e3))
    }
    /// The dBm value.
    pub const fn dbm(self) -> f64 {
        self.0
    }
    /// In milliwatts.
    pub fn mw(self) -> f64 {
        db::dbm_to_mw(self.0)
    }
    /// In watts.
    pub fn watts(self) -> f64 {
        self.mw() * 1e-3
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl AddAssign<Db> for Dbm {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl SubAssign<Db> for Dbm {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

/// A power *ratio* in decibels (gain if positive, loss if negative).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Db(f64);

impl Db {
    /// The unit ratio (0 dB).
    pub const ZERO: Db = Db(0.0);

    /// From a dB value.
    pub const fn new(db: f64) -> Self {
        Db(db)
    }
    /// From a linear power ratio.
    pub fn from_linear(ratio: f64) -> Self {
        Db(db::lin_to_db(ratio))
    }
    /// The dB value.
    pub const fn db(self) -> f64 {
        self.0
    }
    /// As a linear power ratio.
    pub fn linear(self) -> f64 {
        db::db_to_lin(self.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// An antenna gain relative to isotropic, in dBi.
///
/// Kept distinct from [`Db`] so that signatures say *which* quantity they
/// want; converting to a [`Db`] link-budget term is explicit.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Dbi(f64);

impl Dbi {
    /// From a dBi value.
    pub const fn new(dbi: f64) -> Self {
        Dbi(dbi)
    }
    /// The dBi value.
    pub const fn dbi(self) -> f64 {
        self.0
    }
    /// As a link-budget gain term.
    pub const fn as_db(self) -> Db {
        Db(self.0)
    }
    /// As a linear power gain.
    pub fn linear(self) -> f64 {
        db::db_to_lin(self.0)
    }
}

impl fmt::Display for Dbi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBi", self.0)
    }
}

/// Generic absolute power that remembers whether it is meaningful.
///
/// [`Dbm`] cannot represent "no signal at all" without resorting to −∞; this
/// tiny enum makes that case explicit where links can be fully blocked.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Power {
    /// A finite received power.
    Some(Dbm),
    /// No propagation path exists (fully blocked, or no tag in beam).
    None,
}

impl Power {
    /// The power, or `None` if there is no signal.
    pub fn dbm(self) -> Option<f64> {
        match self {
            Power::Some(p) => Some(p.dbm()),
            Power::None => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Bandwidth & data rate
// ---------------------------------------------------------------------------

/// A channel bandwidth, stored in hertz.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From hertz.
    pub const fn from_hz(hz: f64) -> Self {
        Bandwidth(hz)
    }
    /// From kilohertz.
    pub fn from_khz(khz: f64) -> Self {
        Bandwidth(khz * 1e3)
    }
    /// From megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Bandwidth(mhz * 1e6)
    }
    /// From gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Bandwidth(ghz * 1e9)
    }
    /// In hertz.
    pub const fn hz(self) -> f64 {
        self.0
    }
    /// In megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.1} GHz", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.1} MHz", self.0 / 1e6)
        } else {
            write!(f, "{:.1} kHz", self.0 / 1e3)
        }
    }
}

/// A data rate, stored in bits per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct DataRate(f64);

impl DataRate {
    /// The zero rate (link down).
    pub const ZERO: DataRate = DataRate(0.0);

    /// From bits per second.
    pub const fn from_bps(bps: f64) -> Self {
        DataRate(bps)
    }
    /// From kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        DataRate(kbps * 1e3)
    }
    /// From megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        DataRate(mbps * 1e6)
    }
    /// From gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        DataRate(gbps * 1e9)
    }
    /// In bits per second.
    pub const fn bps(self) -> f64 {
        self.0
    }
    /// In megabits per second.
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }
    /// In gigabits per second.
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2} kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Temperature
// ---------------------------------------------------------------------------

/// An absolute temperature, stored in kelvin.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Temperature(f64);

impl Temperature {
    /// Room temperature, 300 K, as used by the paper's noise-floor math.
    pub const ROOM: Temperature = Temperature(crate::constants::ROOM_TEMPERATURE_K);

    /// From kelvin.
    pub const fn from_kelvin(k: f64) -> Self {
        Temperature(k)
    }
    /// In kelvin.
    pub const fn kelvin(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_wavelength_24ghz() {
        // λ at 24 GHz is 12.49 mm — the scale that makes mmTag antennas small.
        let lambda = Frequency::from_ghz(24.0).wavelength();
        assert!((lambda.mm() - 12.491).abs() < 0.01);
    }

    #[test]
    fn mmwave_band_check() {
        assert!(Frequency::from_ghz(24.0).is_mmwave());
        assert!(Frequency::from_ghz(60.0).is_mmwave());
        assert!(!Frequency::from_ghz(2.4).is_mmwave());
        assert!(!Frequency::from_mhz(915.0).is_mmwave());
    }

    #[test]
    fn feet_meter_conversions() {
        let d = Distance::from_feet(10.0);
        assert!((d.meters() - 3.048).abs() < 1e-12);
        assert!((d.feet() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn angle_normalization() {
        let a = Angle::from_degrees(370.0).normalized();
        assert!((a.degrees() - 10.0).abs() < 1e-9);
        let b = Angle::from_degrees(-190.0).normalized();
        assert!((b.degrees() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn angle_separation_is_symmetric_and_bounded() {
        let a = Angle::from_degrees(170.0);
        let b = Angle::from_degrees(-170.0);
        assert!((a.separation(b).degrees() - 20.0).abs() < 1e-9);
        assert!((b.separation(a).degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_arithmetic() {
        let p = Dbm::from_mw(20.0); // the paper's TX power
        assert!((p.dbm() - 13.0103).abs() < 1e-4);
        let after_loss = p - Db::new(60.0);
        assert!((after_loss.dbm() + 46.99).abs() < 0.01);
        let ratio = p - after_loss;
        assert!((ratio.db() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_watts_roundtrip() {
        let p = Dbm::from_watts(2.0);
        assert!((p.dbm() - 33.0103).abs() < 1e-4);
        assert!((p.watts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn db_linear_roundtrip() {
        let g = Db::from_linear(100.0);
        assert!((g.db() - 20.0).abs() < 1e-9);
        assert!((g.linear() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn data_rate_display_units() {
        assert_eq!(DataRate::from_gbps(1.0).to_string(), "1.00 Gbps");
        assert_eq!(DataRate::from_mbps(10.0).to_string(), "10.00 Mbps");
        assert_eq!(DataRate::from_kbps(1.5).to_string(), "1.50 kbps");
    }

    #[test]
    fn bandwidth_constructors_agree() {
        assert_eq!(Bandwidth::from_ghz(2.0).hz(), 2e9);
        assert_eq!(Bandwidth::from_mhz(200.0).hz(), 2e8);
        assert_eq!(Bandwidth::from_khz(500.0).hz(), 5e5);
    }
}
