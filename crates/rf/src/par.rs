//! Deterministic parallel execution on `std::thread::scope` — no thread
//! pools, no external crates, no shared mutable state beyond one atomic
//! work counter.
//!
//! ## The determinism contract
//!
//! Every primitive here partitions work into *indexed units* (items or
//! fixed-size chunks), lets any number of worker threads race to claim
//! units, and then merges the results **in unit order**. Because the
//! closure receives only the unit index (plus the item it names), the
//! result of unit `i` cannot depend on which thread ran it or on how many
//! threads exist — so output is bit-identical at any thread count,
//! including the serial `threads == 1` escape hatch. Randomized workloads
//! keep the same property by deriving each unit's RNG stream from its
//! index via [`crate::rng::SeedTree`], never by sharing a sequential
//! stream across units.
//!
//! What the contract does *not* promise: results are invariant to the
//! *chunk size*. Changing the chunk decomposition re-partitions the random
//! streams, which is a different (equally valid) Monte-Carlo sample.
//! Callers that expose chunked APIs fix their chunk size as a constant.
//!
//! ## Thread-count selection
//!
//! [`thread_limit`] reads the `MMTAG_THREADS` environment variable
//! (clamped to ≥ 1, `MMTAG_THREADS=1` forces fully serial in-line
//! execution) and falls back to [`std::thread::available_parallelism`].
//! The `*_with` variants take an explicit count, which is what the
//! determinism regression tests and the serial-vs-parallel benches use.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker-thread budget: `MMTAG_THREADS` if set and ≥ 1, otherwise
/// the machine's available parallelism (1 if unknown).
pub fn thread_limit() -> usize {
    match std::env::var("MMTAG_THREADS") {
        Ok(v) => parse_thread_override(&v).unwrap_or_else(available_threads),
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses an `MMTAG_THREADS` value: `Some(n)` for an integer ≥ 1, `None`
/// for anything unusable (which falls back to auto-detection).
pub fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Evaluates `f(0..n)` with an explicit thread budget and returns the
/// results in index order. `threads <= 1` (or trivially small `n`) runs
/// serially on the calling thread — no spawns, the exact loop a
/// single-threaded caller would have written.
///
/// Worker panics are re-raised on the calling thread.
pub fn par_indexed_with<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let f = &f;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Deterministic merge: place every unit at its index.
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, u) in part {
            debug_assert!(slots[i].is_none(), "unit {i} computed twice");
            slots[i] = Some(u);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every unit claimed exactly once"))
        .collect()
}

/// [`par_indexed_with`] at the default [`thread_limit`].
pub fn par_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_indexed_with(thread_limit(), n, f)
}

/// Maps `f` over `items` in parallel; results come back in item order.
/// `f` receives `(index, &item)` so randomized work can derive a
/// per-item stream from the index.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(thread_limit(), items, f)
}

/// [`par_map`] with an explicit thread budget.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_indexed_with(threads, items.len(), |i| f(i, &items[i]))
}

/// Splits `0..total` into fixed-size chunks (the last may be short) and
/// evaluates `f(chunk_index, chunk_range)` in parallel; results come back
/// in chunk order. The decomposition depends only on `(total,
/// chunk_size)`, so chunked Monte-Carlo seeded by chunk index is
/// reproducible at any thread count.
///
/// # Panics
/// Panics when `chunk_size == 0`.
pub fn par_chunks<U, F>(total: usize, chunk_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    par_chunks_with(thread_limit(), total, chunk_size, f)
}

/// [`par_chunks`] with an explicit thread budget.
pub fn par_chunks_with<U, F>(threads: usize, total: usize, chunk_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk size must be ≥ 1");
    let n_chunks = total.div_ceil(chunk_size);
    par_indexed_with(threads, n_chunks, |i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(total);
        f(i, start..end)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedTree};

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| {
            let mut rng = SeedTree::new(7).rng_indexed("unit", i as u64);
            (0..100).map(|_| rng.f64()).sum::<f64>()
        };
        let serial = par_indexed_with(1, 64, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                serial,
                par_indexed_with(threads, 64, f),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_decomposition_is_exact() {
        let ranges = par_chunks_with(4, 10, 3, |i, r| (i, r));
        assert_eq!(ranges, vec![(0, 0..3), (1, 3..6), (2, 6..9), (3, 9..10)]);
        // total divisible by chunk: no runt chunk.
        assert_eq!(par_chunks_with(2, 6, 3, |_, r| r.len()), vec![3, 3]);
        // empty input: no chunks at all.
        assert!(par_chunks_with(2, 0, 3, |_, _| 0).is_empty());
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        assert_eq!(par_indexed_with(32, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(par_indexed_with(32, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override("-3"), None);
        assert_eq!(parse_thread_override("auto"), None);
        assert!(thread_limit() >= 1);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_is_a_bug() {
        let _ = par_chunks_with(2, 10, 0, |_, _| 0);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_indexed_with(4, 16, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
