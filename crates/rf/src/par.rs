//! Deterministic parallel execution on the process-wide persistent
//! worker pool ([`crate::pool`]) — no external crates, no per-call
//! thread spawns, no shared mutable state beyond one atomic work counter
//! per call.
//!
//! ## The determinism contract
//!
//! Every primitive here partitions work into *indexed units* (items or
//! fixed-size chunks), lets any number of worker threads race to claim
//! units, and then merges the results **in unit order**. Because the
//! closure receives only the unit index (plus the item it names), the
//! result of unit `i` cannot depend on which thread ran it or on how many
//! threads exist — so output is bit-identical at any thread count,
//! including the serial `threads == 1` escape hatch. Randomized workloads
//! keep the same property by deriving each unit's RNG stream from its
//! index via [`crate::rng::SeedTree`], never by sharing a sequential
//! stream across units.
//!
//! What the contract does *not* promise: results are invariant to the
//! *chunk size*. Changing the chunk decomposition re-partitions the random
//! streams, which is a different (equally valid) Monte-Carlo sample.
//! Callers that expose chunked APIs fix their chunk size as a constant.
//!
//! Units are *claimed* in auto-tuned batches (several consecutive unit
//! indices per counter increment) to keep contention on the shared
//! counter negligible when units are tiny. The batch size affects only
//! which participant runs which unit — never the unit→result mapping or
//! the merge order — so it is free to vary without breaking determinism.
//!
//! ## Thread-count selection
//!
//! [`thread_limit`] reads the `MMTAG_THREADS` environment variable
//! (clamped to ≥ 1, `MMTAG_THREADS=1` forces fully serial in-line
//! execution) and falls back to [`std::thread::available_parallelism`].
//! The `*_with` variants take an explicit count, which is what the
//! determinism regression tests and the serial-vs-parallel benches use.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// The worker-thread budget: `MMTAG_THREADS` if set and ≥ 1, otherwise
/// the machine's available parallelism (1 if unknown).
///
/// An *unusable* `MMTAG_THREADS` value (`0`, `abc`, …) falls back to
/// auto-detection and emits a one-time warning on stderr — silently
/// ignoring an explicit override would leave the user running at a thread
/// count they never asked for with no signal at all.
pub fn thread_limit() -> usize {
    let raw = std::env::var("MMTAG_THREADS").ok();
    let (n, warning) = resolve_thread_limit(raw.as_deref());
    if let Some(msg) = warning {
        static WARN_ONCE: Once = Once::new();
        WARN_ONCE.call_once(|| crate::obs::warn(&msg));
    }
    n
}

/// The pure core of [`thread_limit`]: maps the raw `MMTAG_THREADS` value
/// (or `None` when unset) to the worker budget, plus the warning message
/// to emit when the value was present but unusable. Split out so the
/// warning path is unit-testable without touching process environment or
/// capturing stderr.
pub fn resolve_thread_limit(raw: Option<&str>) -> (usize, Option<String>) {
    match raw {
        None => (available_threads(), None),
        Some(v) => match parse_thread_override(v) {
            Some(n) => (n, None),
            None => (
                available_threads(),
                Some(format!(
                    "mmtag: ignoring unusable MMTAG_THREADS={v:?}; accepted \
                     values are integers ≥ 1 (1 = fully serial, larger = \
                     worker-thread budget); auto-detecting parallelism"
                )),
            ),
        },
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses an `MMTAG_THREADS` value: `Some(n)` for an integer ≥ 1, `None`
/// for anything unusable (which falls back to auto-detection).
pub fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Evaluates `f(0..n)` with an explicit thread budget and returns the
/// results in index order. `threads <= 1` (or trivially small `n`) runs
/// serially on the calling thread — no spawns, the exact loop a
/// single-threaded caller would have written.
///
/// Worker panics are re-raised on the calling thread.
pub fn par_indexed_with<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // The scratch-free primitive is the unit-scratch special case of the
    // scratch-carrying one — one work loop to maintain and test.
    par_indexed_scratch_with(threads, n, || (), |(), i| f(i))
}

/// [`par_indexed_with`] at the default [`thread_limit`].
pub fn par_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_indexed_with(thread_limit(), n, f)
}

/// Maps `f` over `items` in parallel; results come back in item order.
/// `f` receives `(index, &item)` so randomized work can derive a
/// per-item stream from the index.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(thread_limit(), items, f)
}

/// [`par_map`] with an explicit thread budget.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_indexed_with(threads, items.len(), |i| f(i, &items[i]))
}

/// [`par_indexed_with`] with a **lazily-initialized per-worker scratch**:
/// each worker calls `init()` at most once — on the first unit it claims —
/// and reuses that workspace for every further unit it processes, so a
/// trial loop's buffers are allocated `O(workers)` times per call instead
/// of `O(units)`.
///
/// The determinism contract is unchanged *provided the closure treats the
/// scratch as write-before-read storage*: unit `i`'s result must depend
/// only on `i` (and data reachable from `f` itself), never on scratch
/// contents left behind by whichever units the same worker ran earlier.
/// Every kernel in this workspace satisfies that by fully overwriting the
/// buffers it reads (see DESIGN.md §8 for the ownership rules).
pub fn par_indexed_scratch_with<S, U, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    if threads <= 1 || n <= 1 {
        // Serial path: one scratch for the whole loop, created lazily so
        // `n == 0` performs no setup work at all.
        let mut scratch: Option<S> = None;
        return (0..n)
            .map(|i| f(scratch.get_or_insert_with(&init), i))
            .collect();
    }
    let participants = threads.min(n);
    let batch = claim_batch(n, participants);
    let next = AtomicUsize::new(0);
    // Results are written straight into the output buffer: participant
    // batches are disjoint index ranges off one atomic counter, so every
    // slot is written exactly once and `set_len` is sound after the pool
    // barrier. In steady state (obs off, warm pool) the only allocation
    // in this function is this single `Vec`, and even that disappears
    // for zero-sized `U` — see `tests/alloc_guard.rs`.
    let mut out: Vec<U> = Vec::with_capacity(n);
    let base = SendPtr(out.as_mut_ptr());
    // Per-unit observability deltas, tagged with the unit index. Only
    // touched when recording is on; replayed in unit order below so the
    // event log matches a serial run exactly (see `crate::obs`).
    let shards: std::sync::Mutex<Vec<(usize, Vec<crate::obs::Event>)>> =
        std::sync::Mutex::new(Vec::new());
    let work = || {
        // One activation per participant: scratch is lazily built on the
        // first claimed unit and reused for the rest of this call.
        let mut scratch: Option<S> = None;
        loop {
            let start = next.fetch_add(batch, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + batch).min(n);
            for i in start..end {
                let mark = crate::obs::capture_mark();
                let u = f(scratch.get_or_insert_with(&init), i);
                let events = crate::obs::capture_since(mark);
                // SAFETY: `i < n <= capacity`, and the batch claim gives
                // this participant exclusive ownership of slot `i`.
                #[allow(unsafe_code)]
                unsafe {
                    base.write(i, u);
                }
                if !events.is_empty() {
                    shards
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, events));
                }
            }
        }
    };
    // The caller is one participant; the pool contributes the rest. A
    // participant panic propagates out of `run`, skipping `set_len` —
    // already-written results are then leaked, never double-dropped.
    crate::pool::run(participants - 1, &work);
    // SAFETY: `run` returns normally only after every participant has
    // exited its claim loop, which requires the counter to have passed
    // `n` with all claimed units completed — all `n` slots are written.
    #[allow(unsafe_code)]
    unsafe {
        out.set_len(n);
    }
    let mut shards = shards.into_inner().unwrap_or_else(|e| e.into_inner());
    shards.sort_unstable_by_key(|&(i, _)| i);
    for (_, events) in shards {
        crate::obs::append_events(events);
    }
    out
}

/// How many consecutive unit indices one counter increment claims.
/// Small enough that the tail imbalance is at most one batch per
/// participant, large enough that tiny units don't serialize on the
/// counter's cache line.
fn claim_batch(n: usize, participants: usize) -> usize {
    (n / (participants * 8)).clamp(1, 64)
}

/// A raw result pointer that may cross into pool workers.
struct SendPtr<U>(*mut U);

impl<U> SendPtr<U> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the buffer this pointer was taken from,
    /// and no other thread may touch slot `i`.
    #[allow(unsafe_code)]
    unsafe fn write(&self, i: usize, value: U) {
        // SAFETY: delegated to the caller's contract above.
        unsafe { self.0.add(i).write(value) }
    }
}

// SAFETY: the pointer targets a buffer owned by the submitting stack
// frame, which outlives the parallel region (the pool blocks until all
// participants finish); participants write disjoint slots, and `U: Send`
// makes moving the written values across threads sound.
#[allow(unsafe_code)]
unsafe impl<U: Send> Send for SendPtr<U> {}
#[allow(unsafe_code)]
unsafe impl<U: Send> Sync for SendPtr<U> {}

/// [`par_indexed_scratch_with`] at the default [`thread_limit`].
pub fn par_indexed_scratch<S, U, I, F>(n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    par_indexed_scratch_with(thread_limit(), n, init, f)
}

/// The scratch-carrying variant of [`par_chunks_with`] (*map chunks with
/// scratch*): fixed-size chunk decomposition, with each worker reusing one
/// lazily-initialized workspace across all the chunks it claims. This is
/// the shape of every zero-allocation Monte-Carlo hot path: chunk `i`
/// seeds its own RNG stream from `i`, borrows the worker's scratch, and
/// fully overwrites whatever it reads.
///
/// # Panics
/// Panics when `chunk_size == 0`.
pub fn par_chunks_scratch_with<S, U, I, F>(
    threads: usize,
    total: usize,
    chunk_size: usize,
    init: I,
    f: F,
) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk size must be ≥ 1");
    let n_chunks = total.div_ceil(chunk_size);
    par_indexed_scratch_with(threads, n_chunks, init, |scratch, i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(total);
        f(scratch, i, start..end)
    })
}

/// [`par_chunks_scratch_with`] at the default [`thread_limit`].
pub fn par_chunks_scratch<S, U, I, F>(total: usize, chunk_size: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> U + Sync,
{
    par_chunks_scratch_with(thread_limit(), total, chunk_size, init, f)
}

/// Splits `0..total` into fixed-size chunks (the last may be short) and
/// evaluates `f(chunk_index, chunk_range)` in parallel; results come back
/// in chunk order. The decomposition depends only on `(total,
/// chunk_size)`, so chunked Monte-Carlo seeded by chunk index is
/// reproducible at any thread count.
///
/// # Panics
/// Panics when `chunk_size == 0`.
pub fn par_chunks<U, F>(total: usize, chunk_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    par_chunks_with(thread_limit(), total, chunk_size, f)
}

/// [`par_chunks`] with an explicit thread budget.
pub fn par_chunks_with<U, F>(threads: usize, total: usize, chunk_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk size must be ≥ 1");
    let n_chunks = total.div_ceil(chunk_size);
    par_indexed_with(threads, n_chunks, |i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(total);
        f(i, start..end)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedTree};

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| {
            let mut rng = SeedTree::new(7).rng_indexed("unit", i as u64);
            (0..100).map(|_| rng.f64()).sum::<f64>()
        };
        let serial = par_indexed_with(1, 64, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                serial,
                par_indexed_with(threads, 64, f),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_decomposition_is_exact() {
        let ranges = par_chunks_with(4, 10, 3, |i, r| (i, r));
        assert_eq!(ranges, vec![(0, 0..3), (1, 3..6), (2, 6..9), (3, 9..10)]);
        // total divisible by chunk: no runt chunk.
        assert_eq!(par_chunks_with(2, 6, 3, |_, r| r.len()), vec![3, 3]);
        // empty input: no chunks at all.
        assert!(par_chunks_with(2, 0, 3, |_, _| 0).is_empty());
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        assert_eq!(par_indexed_with(32, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(par_indexed_with(32, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override("-3"), None);
        assert_eq!(parse_thread_override("auto"), None);
        assert!(thread_limit() >= 1);
    }

    #[test]
    fn unusable_thread_override_warns_and_falls_back() {
        // The warning path: a present-but-unusable value must (a) fall
        // back to auto-detection and (b) say so — never silently.
        for bad in ["0", "abc", "-3", "", " 1.5 "] {
            let (n, warning) = resolve_thread_limit(Some(bad));
            assert!(n >= 1, "{bad:?} must still yield a usable budget");
            let msg = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(msg.contains("MMTAG_THREADS"), "{msg}");
            assert!(msg.contains(bad), "warning must quote the value: {msg}");
        }
        // Usable values and the unset case stay silent.
        assert_eq!(resolve_thread_limit(Some("8")), (8, None));
        assert_eq!(resolve_thread_limit(Some(" 2 ")), (2, None));
        let (auto, silent) = resolve_thread_limit(None);
        assert!(auto >= 1 && silent.is_none());
    }

    #[test]
    fn scratch_variant_matches_scratch_free_at_any_thread_count() {
        let f = |i: usize| {
            let mut rng = SeedTree::new(7).rng_indexed("unit", i as u64);
            (0..100).map(|_| rng.f64()).sum::<f64>()
        };
        let reference = par_indexed_with(1, 64, f);
        for threads in [1, 2, 3, 8, 64] {
            let scratched = par_indexed_scratch_with(
                threads,
                64,
                || vec![0.0f64; 100],
                |buf, i| {
                    // Write-before-read: fill the scratch from unit i's
                    // stream, then reduce it.
                    let mut rng = SeedTree::new(7).rng_indexed("unit", i as u64);
                    for slot in buf.iter_mut() {
                        *slot = rng.f64();
                    }
                    buf.iter().sum::<f64>()
                },
            );
            assert_eq!(reference, scratched, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_initialized_lazily_and_at_most_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        // Zero units → init never runs (serial and parallel paths).
        for threads in [1, 4] {
            let inits = AtomicUsize::new(0);
            let out = par_indexed_scratch_with(
                threads,
                0,
                || inits.fetch_add(1, Ordering::Relaxed),
                |_, i| i,
            );
            assert!(out.is_empty());
            assert_eq!(inits.load(Ordering::Relaxed), 0, "threads={threads}");
        }
        // Many units, few workers → at most `workers` inits, at least one.
        let inits = AtomicUsize::new(0);
        let _ = par_indexed_scratch_with(
            4,
            1000,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), i| i,
        );
        let count = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&count), "inits={count}");
    }

    #[test]
    fn chunk_scratch_decomposition_matches_plain_chunks() {
        let plain = par_chunks_with(4, 10, 3, |i, r| (i, r));
        let scratched = par_chunks_scratch_with(4, 10, 3, || (), |(), i, r| (i, r));
        assert_eq!(plain, scratched);
        assert!(par_chunks_scratch_with(2, 0, 3, || (), |(), _, _| 0).is_empty());
    }

    #[test]
    fn scratch_worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_indexed_scratch_with(
                4,
                16,
                || (),
                |(), i| {
                    if i == 7 {
                        panic!("boom at {i}");
                    }
                    i
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_is_a_bug() {
        let _ = par_chunks_with(2, 10, 0, |_, _| 0);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_indexed_with(4, 16, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
