//! Radix-2 decimation-in-time FFT.
//!
//! The PHY layer's spectrum analysis (occupied bandwidth of the OOK
//! waveform, the justification for the paper's `symbol rate = B/2` rule)
//! needs a Fourier transform; this is the classic iterative radix-2
//! implementation — in-place, allocation-free after the twiddle table,
//! `O(N log N)`, no external dependency.

use crate::complex::Complex;

/// In-place FFT of a power-of-two-length buffer.
///
/// Forward transform, `e^{-j2πkn/N}` kernel, no normalization (apply
/// `1/N` on the inverse, as [`ifft`] does).
///
/// # Panics
/// Panics if the length is not a power of two (zero-pad at the call site —
/// silently doing so here would change the caller's bin spacing).
pub fn fft(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_phase(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (normalized by `1/N`).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft(buf: &mut [Complex]) {
    let n = buf.len();
    for x in buf.iter_mut() {
        *x = x.conj();
    }
    fft(buf);
    let scale = 1.0 / n as f64;
    for x in buf.iter_mut() {
        *x = x.conj().scale(scale);
    }
}

/// Power spectral density estimate by Welch's method: mean of `|FFT|²`
/// over half-overlapping Hann-windowed segments of length `nfft`.
///
/// Returns `nfft` bins of *linear* power, DC first, matching the FFT's
/// natural ordering (use [`fft_shift`] for a centered view). The window's
/// coherent gain is compensated so a unit-amplitude tone reads ~1·N/4 per
/// its two bins regardless of windowing.
///
/// # Panics
/// Panics if `nfft` is not a power of two or the signal is shorter than
/// one segment.
pub fn welch_psd(signal: &[Complex], nfft: usize) -> Vec<f64> {
    assert!(nfft.is_power_of_two(), "nfft must be a power of two");
    assert!(signal.len() >= nfft, "signal shorter than one FFT segment");
    let hop = nfft / 2;
    let window: Vec<f64> = (0..nfft)
        .map(|i| {
            let x = std::f64::consts::TAU * i as f64 / nfft as f64;
            0.5 * (1.0 - x.cos())
        })
        .collect();
    let win_power: f64 = window.iter().map(|w| w * w).sum::<f64>() / nfft as f64;

    let mut acc = vec![0.0f64; nfft];
    let mut segments = 0usize;
    let mut buf = vec![Complex::ZERO; nfft];
    let mut start = 0;
    while start + nfft <= signal.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = signal[start + i] * window[i];
        }
        fft(&mut buf);
        for (a, b) in acc.iter_mut().zip(&buf) {
            *a += b.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    let norm = 1.0 / (segments as f64 * nfft as f64 * win_power);
    for a in &mut acc {
        *a *= norm;
    }
    acc
}

/// Reorders an FFT output so the zero-frequency bin sits at the center
/// (index `n/2`), for symmetric spectrum plots.
pub fn fft_shift<T: Copy>(bins: &[T]) -> Vec<T> {
    let n = bins.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&bins[half..]);
    out.extend_from_slice(&bins[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, bin: usize, amp: f64) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::from_phase(std::f64::consts::TAU * bin as f64 * i as f64 / n as f64)
                    .scale(amp)
            })
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::ZERO; 16];
        buf[0] = Complex::ONE;
        fft(&mut buf);
        for b in &buf {
            assert!((b.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_tone_is_single_bin() {
        let mut buf = tone(64, 5, 1.0);
        fft(&mut buf);
        for (k, b) in buf.iter().enumerate() {
            if k == 5 {
                assert!((b.abs() - 64.0).abs() < 1e-9, "bin 5 = {}", b.abs());
            } else {
                assert!(b.abs() < 1e-9, "bin {k} = {}", b.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut buf = orig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in orig.iter().zip(&buf) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let sig: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.7).cos() * 0.5))
            .collect();
        let time_energy: f64 = sig.iter().map(|s| s.norm_sqr()).sum();
        let mut buf = sig.clone();
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|s| s.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn welch_finds_tone_bin() {
        let sig = tone(4096, 0, 0.0)
            .iter()
            .zip(tone(4096, 32 * 8, 1.0)) // bin 32 of a 512-FFT scale... use direct freq
            .map(|(_, t)| t)
            .collect::<Vec<_>>();
        // Tone at normalized frequency 256/4096 = bin 32 of a 512 FFT.
        let psd = welch_psd(&sig, 512);
        let peak_bin = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak_bin, 32);
    }

    #[test]
    fn welch_of_white_noise_is_flat() {
        // Deterministic pseudo-noise.
        let mut x: u64 = 0x12345678;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as f64 / u64::MAX as f64) - 0.5
        };
        let sig: Vec<Complex> = (0..16384).map(|_| Complex::new(next(), next())).collect();
        let psd = welch_psd(&sig, 256);
        let mean: f64 = psd.iter().sum::<f64>() / psd.len() as f64;
        let max = psd.iter().cloned().fold(0.0, f64::max);
        assert!(max / mean < 3.0, "white PSD peak/mean = {}", max / mean);
    }

    #[test]
    fn fft_shift_centers_dc() {
        let shifted = fft_shift(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(shifted, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        // DC (old index 0) is now at n/2.
        assert_eq!(shifted[4], 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_a_bug() {
        let mut buf = vec![Complex::ZERO; 12];
        fft(&mut buf);
    }
}
