//! Deterministic observability: spans, counters, histograms, trace export.
//!
//! The Monte-Carlo engine is fast and bit-identical at any thread count,
//! but until this module it was also opaque: a slow 26-experiment sweep or
//! a regressed kernel showed up only as an end-to-end wall time. `obs`
//! adds the missing visibility — hierarchical span timers, event counters
//! and log-bucketed histograms — without external dependencies and, more
//! importantly, **without ever changing simulated results**.
//!
//! ## The determinism argument
//!
//! Observability must not perturb the engine's contract (results are
//! bit-identical at any thread count — see [`crate::par`]). Two rules make
//! that hold:
//!
//! 1. **Recording is a pure side channel.** Instrumented code never reads
//!    anything back from the collector; counters, histogram observations
//!    and span timings cannot flow into simulated numbers. Wall-clock
//!    times live only in span events and reports — exactly like the
//!    pre-existing `wall_ms` manifest field — never in result tables.
//! 2. **Events are sharded per worker and merged in unit order.** All
//!    recording goes to a thread-local buffer. The parallel engine
//!    ([`crate::par::par_indexed_scratch_with`]) captures each work unit's
//!    event delta on the worker that ran it and appends the deltas to the
//!    *calling* thread's buffer in unit-index order after the join. The
//!    resulting event log therefore has the same deterministic structure
//!    (same events, same order) at 1 thread and at 64; only the wall-time
//!    *values* inside span events differ. Counter and histogram merges are
//!    integer additions — commutative and associative — so aggregated
//!    metrics are bit-identical across thread counts.
//!
//! ## Levels and overhead
//!
//! Recording is gated by a process-global [`Level`]:
//!
//! * [`Level::Off`] (default) — every hook is a single relaxed atomic
//!   load; hot kernels pay no time and allocate nothing (the repo's
//!   allocation-guard test runs at this level).
//! * [`Level::Counters`] — counters and histogram observations are
//!   recorded; spans stay inert.
//! * [`Level::Trace`] — everything, including span timers, is recorded;
//!   [`ObsReport::to_chrome_json`] exports the result for
//!   `chrome://tracing` / Perfetto. Instrumentation sits at *chunk*
//!   granularity (thousands of bits per event), so even full tracing
//!   costs ≤ a few percent on the hottest kernel — `bench_report` measures
//!   it on every run (the `ber_kernel_traced_over_untraced` row).
//!
//! ## Reporting
//!
//! [`drain`] consumes everything recorded so far into an [`ObsReport`]
//! (aggregated spans/counters/histograms plus the raw event list);
//! [`mark`]/[`report_since`] carve out one run's delta without disturbing
//! an enclosing consumer — the scenario `Runner` uses this to attach a
//! `metrics` block to every run manifest while a CLI `--trace` capture is
//! in flight around it.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How much the observability layer records. Process-global, default
/// [`Level::Off`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing; every hook is one relaxed atomic load.
    Off,
    /// Record counters and histogram observations; spans stay inert.
    Counters,
    /// Record everything, including span timers (Chrome-trace exportable).
    Trace,
}

static LEVEL: AtomicU8 = AtomicU8::new(0);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LOCAL: RefCell<Vec<Event>> = const { RefCell::new(Vec::new()) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// The process-wide monotonic time origin all span timestamps are relative
/// to (first use wins).
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Sets the global recording level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global recording level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        _ => Level::Trace,
    }
}

/// True when counters/histograms are being recorded (level ≥ Counters).
#[inline]
pub fn counting() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Counters as u8
}

/// True when spans are being recorded (level = Trace).
#[inline]
pub fn tracing() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Trace as u8
}

/// One recorded observation. Events are plain data; aggregation happens at
/// report time so recording stays cheap and deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A counter increment.
    Count {
        /// Counter name (dotted taxonomy, e.g. `phy.ber.bits`).
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// One histogram sample (log-bucketed at report time).
    Observe {
        /// Histogram name.
        name: &'static str,
        /// The observed value.
        value: u64,
    },
    /// A completed span.
    Span {
        /// Span name (dotted taxonomy, e.g. `runner.trials`).
        name: &'static str,
        /// Start time, µs since the process time origin.
        start_us: f64,
        /// Duration in µs.
        dur_us: f64,
        /// Small per-thread id (stable within a thread's lifetime).
        tid: u32,
        /// Nesting depth at entry (0 = top level on that thread).
        depth: u32,
    },
    /// A warning routed through [`warn`].
    Warn {
        /// The warning text (also printed to stderr at emit time).
        message: String,
    },
}

fn record(event: Event) {
    LOCAL.with(|l| l.borrow_mut().push(event));
}

/// Adds `delta` to the named counter. No-op below [`Level::Counters`].
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if counting() {
        record(Event::Count { name, delta });
    }
}

/// Records one histogram sample. No-op below [`Level::Counters`].
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if counting() {
        record(Event::Observe { name, value });
    }
}

/// Emits a warning: always printed to stderr (a warning that only shows up
/// in an opt-in trace is not a warning), and additionally recorded as an
/// [`Event::Warn`] when the level is ≥ [`Level::Counters`] so reports and
/// traces retain it.
pub fn warn(message: &str) {
    eprintln!("{message}");
    if counting() {
        record(Event::Warn {
            message: message.to_string(),
        });
    }
}

/// The small, stable per-thread id used in trace events (assigned lazily,
/// first use per thread).
fn local_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != u32::MAX {
            return v;
        }
        let n = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(n);
        n
    })
}

/// An RAII span timer: created by [`span`], records an [`Event::Span`]
/// (with its wall duration, thread id and nesting depth) when dropped.
/// Inert — no clock reads, no recording — below [`Level::Trace`].
#[must_use = "a span measures the scope it is bound to; an unbound span is empty"]
pub struct SpanGuard {
    name: &'static str,
    /// `Some` only when tracing was enabled at entry.
    start: Option<(Instant, f64)>,
}

/// Opens a span. Bind the guard (`let _span = obs::span("stage");`) so it
/// closes when the scope ends.
pub fn span(name: &'static str) -> SpanGuard {
    let start = if tracing() {
        let origin = anchor();
        let now = Instant::now();
        DEPTH.with(|d| d.set(d.get() + 1));
        Some((now, now.duration_since(origin).as_secs_f64() * 1e6))
    } else {
        None
    };
    SpanGuard { name, start }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, start_us)) = self.start {
            let depth = DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            record(Event::Span {
                name: self.name,
                start_us,
                dur_us: start.elapsed().as_secs_f64() * 1e6,
                tid: local_tid(),
                depth,
            });
        }
    }
}

// ---- per-unit capture: the parallel engine's side of the contract ----

/// Marks the current thread's buffer position so a work unit's event delta
/// can be captured afterwards. Zero-cost (returns 0) when recording is off.
pub(crate) fn capture_mark() -> usize {
    if level() == Level::Off {
        return 0;
    }
    LOCAL.with(|l| l.borrow().len())
}

/// Takes every event recorded on this thread since `mark`. Empty (and
/// allocation-free) when recording is off.
pub(crate) fn capture_since(mark: usize) -> Vec<Event> {
    if level() == Level::Off {
        return Vec::new();
    }
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        if mark >= buf.len() {
            Vec::new()
        } else {
            buf.split_off(mark)
        }
    })
}

/// Appends captured unit deltas to the calling thread's buffer — the merge
/// half of the shard-per-worker scheme. The parallel engine calls this in
/// unit-index order after the join, so the caller's event log ends up
/// identical to what a serial run would have produced.
pub(crate) fn append_events(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    LOCAL.with(|l| l.borrow_mut().extend(events));
}

/// Moves the calling thread's buffered events into the global collector.
fn flush_local() {
    let drained: Vec<Event> = LOCAL.with(|l| std::mem::take(&mut *l.borrow_mut()));
    if drained.is_empty() {
        return;
    }
    EVENTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .extend(drained);
}

// ---- reporting ----

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Summed wall time, µs.
    pub total_us: f64,
    /// Longest single span, µs.
    pub max_us: f64,
}

/// One counter's aggregated value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Summed value.
    pub value: u64,
}

/// One log₂ histogram bucket: `lo` is the bucket's lower bound (0, then
/// successive powers of two); the bucket covers `lo ..= 2·lo − 1` (just
/// `0` for the zero bucket).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

/// One histogram's aggregated, log₂-bucketed shape.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by `lo`.
    pub buckets: Vec<HistBucket>,
}

impl HistogramStat {
    /// Builds a stat from a raw 65-slot log₂ bucket array (the layout
    /// [`observe`] aggregates into): slot 0 counts zeros, slot `i ≥ 1`
    /// counts values in `2^(i−1) ..= 2^i − 1`. Lets code that keeps its
    /// own atomic bucket counters (e.g. a long-running server) reuse the
    /// quantile machinery without routing through the event log.
    pub fn from_counts(name: &str, counts: &[u64; 65]) -> HistogramStat {
        let count: u64 = counts.iter().sum();
        HistogramStat {
            name: name.to_string(),
            count,
            sum: 0,
            buckets: counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &count)| HistBucket {
                    lo: if i == 0 { 0 } else { 1u64 << (i - 1) },
                    count,
                })
                .collect(),
        }
    }

    /// Exact, order-independent quantile over the bucketed samples:
    /// returns the lower bound `lo` of the bucket holding the sample of
    /// rank `⌈q·count⌉` (clamped to `1..=count`), i.e. a conservative
    /// (rounded-down-to-bucket) estimate of the q-quantile. Because the
    /// buckets are aggregates, the result is independent of observation
    /// order and of how samples were sharded across threads. Returns 0
    /// for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.lo;
            }
        }
        self.buckets.last().map(|b| b.lo).unwrap_or(0)
    }

    /// Median bucket bound — `quantile(0.5)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile bucket bound — `quantile(0.95)`.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile bucket bound — `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Everything the observability layer recorded over some window:
/// aggregates (sorted by name, so equal recordings compare equal) plus the
/// raw events for trace export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// Per-span-name aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Counter totals, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histogram shapes, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Warnings, in emission order.
    pub warnings: Vec<String>,
    /// The raw event log (what [`ObsReport::to_chrome_json`] exports).
    pub events: Vec<Event>,
}

/// log₂ bucket index: 0 for value 0, else `floor(log2(v)) + 1` (so bucket
/// `i ≥ 1` has lower bound `2^(i−1)`).
fn bucket_index(value: u64) -> u32 {
    64 - value.leading_zeros()
}

fn aggregate(events: Vec<Event>) -> ObsReport {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut hists: BTreeMap<&'static str, (u64, u64, [u64; 65])> = BTreeMap::new();
    let mut warnings = Vec::new();
    for e in &events {
        match e {
            Event::Count { name, delta } => *counters.entry(name).or_default() += delta,
            Event::Observe { name, value } => {
                let h = hists.entry(name).or_insert((0, 0, [0u64; 65]));
                h.0 += 1;
                h.1 += value;
                h.2[bucket_index(*value) as usize] += 1;
            }
            Event::Span { name, dur_us, .. } => {
                let s = spans.entry(name).or_insert_with(|| SpanStat {
                    name: name.to_string(),
                    ..SpanStat::default()
                });
                s.count += 1;
                s.total_us += dur_us;
                if *dur_us > s.max_us {
                    s.max_us = *dur_us;
                }
            }
            Event::Warn { message } => warnings.push(message.clone()),
        }
    }
    ObsReport {
        spans: spans.into_values().collect(),
        counters: counters
            .into_iter()
            .map(|(name, value)| CounterStat {
                name: name.to_string(),
                value,
            })
            .collect(),
        histograms: hists
            .into_iter()
            .map(|(name, (count, sum, buckets))| HistogramStat {
                name: name.to_string(),
                count,
                sum,
                buckets: buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &count)| HistBucket {
                        lo: if i == 0 { 0 } else { 1u64 << (i - 1) },
                        count,
                    })
                    .collect(),
            })
            .collect(),
        warnings,
        events,
    }
}

/// Flushes the calling thread's buffer and returns the global event count —
/// a cursor for [`report_since`]. Use a `mark`/`report_since` pair to
/// carve one run's metrics out of a longer recording without consuming it.
pub fn mark() -> usize {
    flush_local();
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Aggregates everything recorded since `mark` (a [`mark`] return value)
/// *without* removing it from the collector — an enclosing [`drain`] (e.g.
/// a CLI `--trace` capture) still sees the full log.
pub fn report_since(mark: usize) -> ObsReport {
    flush_local();
    let events: Vec<Event> = {
        let log = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
        log[mark.min(log.len())..].to_vec()
    };
    aggregate(events)
}

/// Consumes everything recorded so far into an [`ObsReport`], leaving the
/// collector empty.
pub fn drain() -> ObsReport {
    flush_local();
    let events = std::mem::take(&mut *EVENTS.lock().unwrap_or_else(|e| e.into_inner()));
    aggregate(events)
}

/// Clears the calling thread's buffer and the global collector (test
/// isolation helper).
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().clear());
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ObsReport {
    /// True when nothing was recorded over the report's window.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Serializes the raw span events as Chrome tracing JSON (the
    /// `chrome://tracing` / Perfetto "trace event" format): one complete
    /// (`"ph": "X"`) event per span, timestamps in µs since the process
    /// time origin, one track per worker thread. Warnings become global
    /// instant events so they stay visible on the timeline.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        for e in &self.events {
            match e {
                Event::Span {
                    name,
                    start_us,
                    dur_us,
                    tid,
                    depth,
                } => push(
                    format!(
                        "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                         \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"depth\": {}}}}}",
                        json_escape(name),
                        tid,
                        start_us,
                        dur_us,
                        depth
                    ),
                    &mut out,
                ),
                Event::Warn { message } => push(
                    format!(
                        "  {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \
                         \"tid\": 0, \"ts\": 0}}",
                        json_escape(message)
                    ),
                    &mut out,
                ),
                Event::Count { .. } | Event::Observe { .. } => {}
            }
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }

    /// Serializes the aggregates as the `metrics` JSON object embedded in
    /// every run manifest: `{"counters": {...}, "spans": {...},
    /// "histograms": {...}}`. Deterministic (name-sorted) and free of raw
    /// events, so manifests stay small.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", json_escape(&c.name), c.value);
        }
        out.push_str("}, \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"total_us\": {:.3}, \"max_us\": {:.3}}}",
                json_escape(&s.name),
                s.count,
                s.total_us,
                s.max_us
            );
        }
        out.push_str("}, \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(&h.name),
                h.count,
                h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", b.lo, b.count);
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Obs state is process-global; tests that touch the level or the
    /// collector serialize through this lock so they can't see each
    /// other's events.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(Level::Off);
        reset();
        guard
    }

    #[test]
    fn off_level_records_nothing() {
        let _g = lock();
        counter_add("test.off.counter", 5);
        observe("test.off.hist", 42);
        {
            let _span = span("test.off.span");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let _g = lock();
        set_level(Level::Counters);
        counter_add("test.agg.b", 2);
        counter_add("test.agg.a", 1);
        counter_add("test.agg.b", 3);
        observe("test.agg.h", 0);
        observe("test.agg.h", 1);
        observe("test.agg.h", 9); // bucket lo = 8
        let report = drain();
        set_level(Level::Off);
        // Sorted by name, summed.
        assert_eq!(report.counter("test.agg.a"), 1);
        assert_eq!(report.counter("test.agg.b"), 5);
        assert!(report.counters.len() >= 2);
        let h = report
            .histograms
            .iter()
            .find(|h| h.name == "test.agg.h")
            .unwrap();
        assert_eq!((h.count, h.sum), (3, 10));
        assert_eq!(
            h.buckets,
            vec![
                HistBucket { lo: 0, count: 1 },
                HistBucket { lo: 1, count: 1 },
                HistBucket { lo: 8, count: 1 },
            ]
        );
        // Counters level keeps spans inert.
        assert!(report.spans.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _g = lock();
        set_level(Level::Trace);
        {
            let _outer = span("test.span.outer");
            let _inner = span("test.span.inner");
        }
        let report = drain();
        set_level(Level::Off);
        let outer = report
            .spans
            .iter()
            .find(|s| s.name == "test.span.outer")
            .unwrap();
        let inner = report
            .spans
            .iter()
            .find(|s| s.name == "test.span.inner")
            .unwrap();
        assert_eq!((outer.count, inner.count), (1, 1));
        assert!(outer.total_us >= inner.total_us);
        // Depths recorded: outer 0, inner 1.
        let depths: Vec<(&str, u32)> = report
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Span { name, depth, .. } => Some((*name, *depth)),
                _ => None,
            })
            .collect();
        assert!(depths.contains(&("test.span.outer", 0)));
        assert!(depths.contains(&("test.span.inner", 1)));
    }

    #[test]
    fn par_capture_merges_in_unit_order_and_counters_are_thread_invariant() {
        let _g = lock();
        set_level(Level::Counters);
        let run = |threads: usize| {
            let _ = crate::par::par_indexed_with(threads, 16, |i| {
                counter_add("test.par.units", 1);
                observe("test.par.index", i as u64);
                i
            });
            drain()
        };
        let serial = run(1);
        for threads in [2, 8] {
            let parallel = run(threads);
            assert_eq!(serial.counters, parallel.counters, "threads={threads}");
            assert_eq!(serial.histograms, parallel.histograms, "threads={threads}");
            // The merged event *log* is identical too (no wall times in
            // counter/observe events).
            assert_eq!(serial.events, parallel.events, "threads={threads}");
        }
        set_level(Level::Off);
        assert_eq!(serial.counter("test.par.units"), 16);
    }

    #[test]
    fn mark_and_report_since_carve_a_window_nondestructively() {
        let _g = lock();
        set_level(Level::Counters);
        counter_add("test.window.before", 1);
        let m = mark();
        counter_add("test.window.inside", 2);
        let window = report_since(m);
        assert_eq!(window.counter("test.window.inside"), 2);
        assert_eq!(window.counter("test.window.before"), 0);
        // Nothing consumed: a full drain still sees both.
        let all = drain();
        set_level(Level::Off);
        assert_eq!(all.counter("test.window.before"), 1);
        assert_eq!(all.counter("test.window.inside"), 2);
    }

    #[test]
    fn warn_is_recorded_when_counting() {
        let _g = lock();
        set_level(Level::Counters);
        warn("test warning: something odd");
        let report = drain();
        set_level(Level::Off);
        assert_eq!(report.warnings, vec!["test warning: something odd"]);
    }

    #[test]
    fn chrome_json_has_trace_events_array() {
        let _g = lock();
        set_level(Level::Trace);
        {
            let _span = span("test.chrome.span");
        }
        warn("test.chrome.warning");
        let report = drain();
        set_level(Level::Off);
        let json = report.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"test.chrome.span\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"test.chrome.warning\""));
    }

    #[test]
    fn metrics_json_is_deterministic_and_complete() {
        let _g = lock();
        set_level(Level::Counters);
        counter_add("test.mj.z", 1);
        counter_add("test.mj.a", 2);
        observe("test.mj.h", 5);
        let json = drain().metrics_json();
        set_level(Level::Off);
        // Name-sorted: a before z.
        let a = json.find("test.mj.a").unwrap();
        let z = json.find("test.mj.z").unwrap();
        assert!(a < z, "{json}");
        assert!(json.contains("\"buckets\": [[4, 1]]"), "{json}");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"histograms\""));
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    /// Builds a HistogramStat the same way `aggregate` does, from raw
    /// sample values, without touching the global recorder.
    fn hist_of(samples: &[u64]) -> HistogramStat {
        let mut counts = [0u64; 65];
        for &v in samples {
            counts[bucket_index(v) as usize] += 1;
        }
        let mut h = HistogramStat::from_counts("test.q", &counts);
        h.sum = samples.iter().sum();
        h
    }

    #[test]
    fn quantile_empty_histogram_is_zero() {
        let h = HistogramStat::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantile_bucket_boundaries() {
        // Samples 0,1,2,3 land in buckets lo=0 (x1), lo=1 (x1), lo=2 (x2).
        let h = hist_of(&[0, 1, 2, 3]);
        assert_eq!(h.count, 4);
        // rank = ceil(q·4), clamped to 1..=4; the bucket holding that
        // rank answers. q=0 clamps up to rank 1 → the zero bucket.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.25), 0); // rank 1 → bucket lo=0
        assert_eq!(h.quantile(0.26), 1); // rank 2 → bucket lo=1
        assert_eq!(h.quantile(0.50), 1); // rank 2 → bucket lo=1
        assert_eq!(h.quantile(0.51), 2); // rank 3 → bucket lo=2
        assert_eq!(h.quantile(0.75), 2); // rank 3 → bucket lo=2
        assert_eq!(h.quantile(1.0), 2); // rank 4 → bucket lo=2
                                        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 2);
    }

    #[test]
    fn quantile_returns_bucket_lower_bound() {
        // 100 samples of value 1000 → one bucket, lo = 512 (2^9), since
        // 1000 ∈ 512..=1023. Every quantile answers that bound.
        let h = hist_of(&[1000; 100]);
        assert_eq!(h.buckets.len(), 1);
        assert_eq!(h.buckets[0].lo, 512);
        assert_eq!(h.p50(), 512);
        assert_eq!(h.p95(), 512);
        assert_eq!(h.p99(), 512);
    }

    #[test]
    fn quantile_is_order_independent() {
        let a = hist_of(&[5, 90, 3, 70000, 12, 12, 900]);
        let b = hist_of(&[12, 900, 70000, 3, 12, 5, 90]);
        for q in [0.0, 0.01, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q), "q={q}");
        }
    }

    #[test]
    fn quantile_tail_ranks() {
        // 99 fast samples (value 1) and one slow outlier (value 4096):
        // p50/p95 sit in the fast bucket, p99 rank 99 still fast, but
        // quantile(1.0) = rank 100 reaches the outlier bucket lo=4096.
        let mut samples = vec![1u64; 99];
        samples.push(4096);
        let h = hist_of(&samples);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p95(), 1);
        assert_eq!(h.p99(), 1);
        assert_eq!(h.quantile(1.0), 4096);
    }

    #[test]
    fn from_counts_matches_aggregate_shape() {
        let _g = lock();
        set_level(Level::Counters);
        reset();
        for v in [0u64, 1, 2, 3, 1000] {
            observe("test.fc", v);
        }
        let report = drain();
        set_level(Level::Off);
        let via_events = report
            .histograms
            .iter()
            .find(|h| h.name == "test.fc")
            .unwrap();
        let mut direct = hist_of(&[0, 1, 2, 3, 1000]);
        direct.name = "test.fc".to_string();
        assert_eq!(via_events, &direct);
    }

    #[test]
    fn empty_report_serializers_are_valid() {
        let report = ObsReport::default();
        assert!(report.is_empty());
        assert_eq!(report.counter("anything"), 0);
        assert_eq!(
            report.metrics_json(),
            "{\"counters\": {}, \"spans\": {}, \"histograms\": {}}"
        );
        assert!(report.to_chrome_json().contains("traceEvents"));
    }
}
