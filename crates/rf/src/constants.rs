//! Physical constants used across the stack.
//!
//! Values follow CODATA 2018. These are the only numbers in the library that
//! are not either calibrated model parameters or derived quantities.

/// Speed of light in vacuum, m/s (exact by SI definition).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, J/K (exact by SI definition).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Reference "room" temperature used for noise calculations, kelvin.
///
/// The paper computes its noise floors at 300 K (§8 footnote 4); using the
/// conventional 290 K would shift every floor by only 0.15 dB, but we match
/// the paper.
pub const ROOM_TEMPERATURE_K: f64 = 300.0;

/// Thermal noise power spectral density `kT` at [`ROOM_TEMPERATURE_K`],
/// expressed in dBm/Hz. `10·log10(kT / 1 mW)` ≈ −173.83 dBm/Hz at 300 K.
pub fn thermal_noise_dbm_per_hz() -> f64 {
    10.0 * (BOLTZMANN * ROOM_TEMPERATURE_K / 1e-3).log10()
}

/// Characteristic impedance assumed for all one-port S-parameter work, ohms.
pub const Z0_OHMS: f64 = 50.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_noise_near_minus_174() {
        let n = thermal_noise_dbm_per_hz();
        // −173.98 dBm/Hz at 290 K; at 300 K it is −173.83.
        assert!((n - (-173.83)).abs() < 0.01, "got {n}");
    }
}
