//! Special functions for BER theory.
//!
//! The PHY layer's closed-form bit-error-rate curves are all expressed in
//! terms of the Gaussian Q-function. `f64::erf` is not in std, so we carry a
//! high-accuracy rational approximation (abs error < 1.2e-7, which is far
//! below Monte-Carlo noise at any bit count we simulate) plus an exact-enough
//! inverse obtained by bisection, used to answer "what SNR do I need for BER
//! 10⁻³?" — the question Fig. 7's rate annotations hinge on.

/// Complementary error function `erfc(x)`.
///
/// Uses the Numerical-Recipes Chebyshev fit; absolute error below 1.2e-7 over
/// the full real line, and correct asymptotics as `x → ±∞`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 − erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian Q-function: the probability that a standard normal exceeds `x`.
///
/// `Q(x) = 0.5·erfc(x/√2)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the Q-function on `(0, 1)`, by bisection.
///
/// Accurate to ~1e-10 in the argument, far tighter than any link-budget use.
/// Returns `+inf` for `p <= 0` and `-inf` for `p >= 1`.
pub fn q_inverse(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::INFINITY;
    }
    if p >= 1.0 {
        return f64::NEG_INFINITY;
    }
    let (mut lo, mut hi) = (-40.0_f64, 40.0_f64);
    // Q is strictly decreasing; bisect until the interval collapses.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Normalized sinc `sin(πx)/(πx)`, with the removable singularity handled.
pub fn sinc(x: f64) -> f64 {
    if x == 0.0 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_anchor_values() {
        // Reference values from tables.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.5, 1.0, 2.0, 3.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
        }
    }

    #[test]
    fn q_function_anchors() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        // Q(1.2816) ≈ 0.10, Q(3.0902) ≈ 1e-3
        assert!((q_function(1.2816) - 0.10).abs() < 1e-4);
        assert!((q_function(3.0902) - 1e-3).abs() < 2e-5);
    }

    #[test]
    fn q_inverse_roundtrip() {
        for p in [0.4, 0.1, 1e-2, 1e-3, 1e-6] {
            let x = q_inverse(p);
            assert!(
                (q_function(x) - p).abs() / p < 1e-5,
                "p={p} x={x} Q(x)={}",
                q_function(x)
            );
        }
    }

    #[test]
    fn q_inverse_edge_cases() {
        assert_eq!(q_inverse(0.0), f64::INFINITY);
        assert_eq!(q_inverse(1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / std::f64::consts::PI).abs() < 1e-12);
    }
}
