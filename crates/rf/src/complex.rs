//! Minimal, fast complex arithmetic for phasor math.
//!
//! The antenna and PHY layers spend almost all their cycles multiplying and
//! accumulating complex phasors (array factors, IQ samples). We implement the
//! small set of operations they need rather than pulling in an external crate;
//! the type is `Copy`, 16 bytes, and every operation is branch-free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used throughout the stack as a *phasor*: `re` and `im` carry the in-phase
/// and quadrature components of a narrowband signal.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates the unit phasor `e^{jθ}` for phase `theta` in radians.
    ///
    /// This is the workhorse of array-factor computation: each antenna
    /// element contributes `from_phase(-π·n·sinθ)`.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex {
            re: r * c,
            im: r * s,
        }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` — the *power* of a phasor, cheaper than
    /// [`abs`](Self::abs) because it avoids the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Reciprocal `1/z`. Returns an all-infinite value for `z == 0`, matching
    /// IEEE-754 division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·(1/b) is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_identities() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::ONE * Complex::J, Complex::J);
        assert_eq!(Complex::J * Complex::J, -Complex::ONE);
    }

    #[test]
    fn from_phase_is_unit_magnitude() {
        for k in -10..=10 {
            let z = Complex::from_phase(0.37 * k as f64);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 1.1);
        assert!((z.abs() - 2.5).abs() < EPS);
        assert!((z.arg() - 1.1).abs() < EPS);
    }

    #[test]
    fn mul_matches_polar_addition_of_phases() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, 0.9);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-10);
        assert!((p.arg() - 1.2).abs() < 1e-10);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-10);
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex::from_polar(1.0, 0.7);
        assert!((z.conj().arg() + 0.7).abs() < EPS);
        // z * conj(z) is |z|² on the real axis.
        let w = Complex::new(3.0, 4.0);
        let p = w * w.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn norm_sqr_equals_abs_squared() {
        let z = Complex::new(-3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((z.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (Complex::J * PI).exp();
        assert!((z + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex = (0..4).map(|n| Complex::new(n as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn phasor_sum_of_opposite_phases_cancels() {
        let a = Complex::from_phase(0.8);
        let b = Complex::from_phase(0.8 + PI);
        assert!((a + b).abs() < EPS);
    }

    #[test]
    fn recip_of_zero_is_non_finite() {
        let z = Complex::ZERO.recip();
        assert!(!z.re.is_finite());
    }
}
