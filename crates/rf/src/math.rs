//! In-house elementary math kernels for the batch samplers.
//!
//! The Monte-Carlo hot loops burn one sine+cosine pair per complex noise
//! sample. libm's `sin_cos` pays for argument reduction over the whole
//! real line and sub-ulp accuracy — neither of which a simulation sampler
//! needs, since its arguments are always `2π·u` with `u ∈ [0, 1)` and the
//! samples feed statistics, not math identities. [`sincos_2pi`] exploits
//! the bounded argument: an exact quadrant reduction (multiplying by 4 is
//! exact, so is the subtraction that follows) and short minimax
//! polynomials on `[-π/4, π/4]`, for roughly a third of the latency at
//! ~1 ulp of error.

use std::f64::consts::FRAC_PI_2;

/// Lane width of the fixed-width SIMD-shaped kernels (8 × f64 = one
/// AVX-512 register, two AVX2 registers). Every SoA hot loop in the stack
/// — the Box–Muller pipeline, the BER/outage counters — processes this
/// many independent elements per pass so the compiler can autovectorize
/// without any explicit intrinsics (the `rf` crate stays `deny(unsafe)`).
pub const LANES: usize = 8;

/// Degree-13 odd minimax polynomial for `sin(x)` on `[-π/4, π/4]`
/// (Cephes `sincof` coefficients, highest order first), evaluated as
/// `x + x·z·P(z)` with `z = x²`.
const SIN_COEF: [f64; 6] = [
    1.589_623_015_765_465_6e-10,
    -2.505_074_776_285_780_7e-8,
    2.755_731_362_138_572_2e-6,
    -1.984_126_982_958_954e-4,
    8.333_333_333_322_118e-3,
    -1.666_666_666_666_663e-1,
];

/// Degree-14 even minimax polynomial for `cos(x)` on `[-π/4, π/4]`
/// (Cephes `coscof`), evaluated as `1 − z/2 + z²·P(z)` with `z = x²`.
const COS_COEF: [f64; 6] = [
    -1.135_853_652_138_768_2e-11,
    2.087_570_084_197_473e-9,
    -2.755_731_417_929_674e-7,
    2.480_158_728_885_171_7e-5,
    -1.388_888_888_887_305_6e-3,
    4.166_666_666_666_659_5e-2,
];

#[inline]
fn poly(z: f64, coef: &[f64; 6]) -> f64 {
    let mut p = coef[0];
    for &c in &coef[1..] {
        p = p * z + c;
    }
    p
}

/// `(sin(2πu), cos(2πu))` for `u ∈ [0, 1)`, accurate to ~1 ulp.
///
/// The turn-based argument makes the range reduction *exact*: `4u` and
/// `4u − round(4u)` round to nothing, so unlike radian reduction there is
/// no cancellation near quadrant boundaries. Out-of-range `u` still
/// produces the periodic extension (the reduction is modular), just with
/// precision decaying as `|u|` grows; the samplers never leave `[0, 1)`.
///
/// This is the transcendental core of the **sampler v2** batch Gaussian
/// fills (`Rng::normal_pair` and everything built on it): both Box–Muller
/// branches for less than the cost libm charges for one.
#[inline]
pub fn sincos_2pi(u: f64) -> (f64, f64) {
    // u = (k + f)/4 with k integral and f ≈∈ [-1/2, 1/2]; the subtraction
    // is exact (k is an integer of comparable magnitude), and `floor` is a
    // single instruction where `round`'s ties-away semantics are not. The
    // `+ 0.5` can itself round, pushing |f| a hair past 1/2 — harmless,
    // the polynomials extrapolate by ~1 ulp of argument there.
    let scaled = 4.0 * u;
    let k = (scaled + 0.5).floor();
    let f = scaled - k;
    // 2πu = k·π/2 + x with x = f·π/2 ∈ [-π/4, π/4].
    let x = f * FRAC_PI_2;
    let z = x * x;
    let s = x + x * z * poly(z, &SIN_COEF);
    let c = 1.0 - 0.5 * z + z * z * poly(z, &COS_COEF);
    // Rotate by k quadrants — (s, c) → (c, −s) per step — with bit tricks
    // instead of a 4-way match: the quadrant of a random sample is random,
    // so a branch here would mispredict ~75% of the time and cost more
    // than the polynomials themselves.
    let q = k as i64 as u64;
    // Odd quadrants swap the pair …
    let swap = (q & 1).wrapping_neg();
    let (sb, cb) = (s.to_bits(), c.to_bits());
    let sm = f64::from_bits((sb & !swap) | (cb & swap));
    let cm = f64::from_bits((cb & !swap) | (sb & swap));
    // … and quadrants 2,3 negate the sine, 1,2 the cosine.
    let s_out = f64::from_bits(sm.to_bits() ^ ((q & 2) << 62));
    let c_out = f64::from_bits(cm.to_bits() ^ ((q.wrapping_add(1) & 2) << 62));
    (s_out, c_out)
}

/// `2⁵² + 2⁵¹`: adding this to an integer-valued `f64` with magnitude
/// below `2⁵¹` is exact and lands the sum in `[2⁵², 2⁵³)`, where the ulp
/// is 1 — so the addend's two's-complement integer bits appear directly
/// in the low mantissa bits. The lane kernel uses this to read a
/// quadrant index without an `f64 → i64` cast, because Rust's saturating
/// cast lowers to `fptosi.sat`, which LLVM's loop vectorizer refuses —
/// one scalar cast per lane was the single instruction keeping the whole
/// sin/cos pipeline out of vector registers.
const QUADRANT_MAGIC: f64 = 6_755_399_441_055_744.0;

/// [`sincos_2pi`] over [`LANES`] independent arguments at once: lane `l`
/// of the outputs is **bit-identical** to `sincos_2pi(u[l])`.
///
/// The scalar kernel is already branch-free (the quadrant rotation is a
/// bit-select, not a match), so evaluating it across a fixed-width array
/// is a pure data-parallel loop the compiler turns into vector code: the
/// polynomial Horner chains run [`LANES`] lanes per instruction instead
/// of one. Every floating-point operation that *produces* an output runs
/// in the scalar kernel's exact sequence — no FMA contraction, no
/// reassociation — so the results carry the same rounding bit for bit,
/// which is what lets the batch Gaussian pipeline
/// ([`crate::rng::Rng::fill_normal`]) keep the seeded golden streams
/// unchanged while vectorizing.
///
/// The one deviation is how the integer quadrant index `q` is read out
/// of `k`: a magic-constant add (`QUADRANT_MAGIC`, 2⁵²+2⁵¹) instead of
/// the scalar path's `as i64`
/// cast. The rotation consumes only `q & 1`, `q & 2` and `(q + 1) & 2`,
/// and both extractions yield `k`'s exact low two bits for every `|k| <
/// 2⁵¹` (the samplers stay below `|k| ≤ 5`), so the selected/negated
/// outputs are identical — pinned lane-by-lane by this module's tests.
#[inline]
pub fn sincos_2pi_lanes(u: &[f64; LANES]) -> ([f64; LANES], [f64; LANES]) {
    let mut s = [0.0f64; LANES];
    let mut c = [0.0f64; LANES];
    for l in 0..LANES {
        let scaled = 4.0 * u[l];
        let k = (scaled + 0.5).floor();
        let f = scaled - k;
        let x = f * FRAC_PI_2;
        let z = x * x;
        let sv = x + x * z * poly(z, &SIN_COEF);
        let cv = 1.0 - 0.5 * z + z * z * poly(z, &COS_COEF);
        let q = (k + QUADRANT_MAGIC).to_bits();
        let swap = (q & 1).wrapping_neg();
        let (sb, cb) = (sv.to_bits(), cv.to_bits());
        let sm = f64::from_bits((sb & !swap) | (cb & swap));
        let cm = f64::from_bits((cb & !swap) | (sb & swap));
        s[l] = f64::from_bits(sm.to_bits() ^ ((q & 2) << 62));
        c[l] = f64::from_bits(cm.to_bits() ^ ((q.wrapping_add(1) & 2) << 62));
    }
    (s, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn matches_libm_over_the_unit_turn() {
        // Dense grid plus the quadrant boundaries themselves. libm's own
        // computation of sin(TAU*u) carries the rounding of TAU*u (~1e-16
        // relative on the argument), so agreement beyond ~4e-16·2π is not
        // even well-defined; 1e-14 absolute is the honest bound.
        for i in 0..=40_000u32 {
            let u = f64::from(i) / 40_000.0 * (1.0 - f64::EPSILON);
            let (s, c) = sincos_2pi(u);
            let a = TAU * u;
            assert!(
                (s - a.sin()).abs() < 1e-14,
                "sin(2π·{u}) = {s} vs {}",
                a.sin()
            );
            assert!(
                (c - a.cos()).abs() < 1e-14,
                "cos(2π·{u}) = {c} vs {}",
                a.cos()
            );
        }
    }

    #[test]
    fn exact_quadrant_points() {
        // The reduction is exact, so the cardinal points are exact too.
        assert_eq!(sincos_2pi(0.0), (0.0, 1.0));
        let (s, c) = sincos_2pi(0.25);
        assert_eq!((s, c.abs()), (1.0, 0.0));
        let (s, c) = sincos_2pi(0.5);
        assert_eq!((s.abs(), c), (0.0, -1.0));
        let (s, c) = sincos_2pi(0.75);
        assert_eq!((s, c.abs()), (-1.0, 0.0));
    }

    #[test]
    fn lanes_kernel_is_bit_identical_to_scalar() {
        // Dense grid spanning all quadrants — including negative and
        // multi-turn arguments, so the magic-number quadrant extraction
        // is pinned against the scalar `as i64` path for negative k too —
        // plus the exact quadrant boundaries.
        for base in -5_000i32..5_000 {
            let mut u = [0.0f64; LANES];
            for (l, slot) in u.iter_mut().enumerate() {
                *slot = (f64::from(base) * LANES as f64 + l as f64) / 4_000.0;
            }
            let (s, c) = sincos_2pi_lanes(&u);
            for l in 0..LANES {
                let (ss, cs) = sincos_2pi(u[l]);
                assert_eq!(s[l].to_bits(), ss.to_bits(), "sin lane {l} at u={}", u[l]);
                assert_eq!(c[l].to_bits(), cs.to_bits(), "cos lane {l} at u={}", u[l]);
            }
        }
        let boundaries = [0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875];
        let (s, c) = sincos_2pi_lanes(&boundaries);
        for l in 0..LANES {
            let (ss, cs) = sincos_2pi(boundaries[l]);
            assert_eq!(
                (s[l].to_bits(), c[l].to_bits()),
                (ss.to_bits(), cs.to_bits())
            );
        }
    }

    #[test]
    fn pythagoras_holds_to_roundoff() {
        for i in 0..10_000u32 {
            let u = f64::from(i) / 10_000.0;
            let (s, c) = sincos_2pi(u);
            assert!((s * s + c * c - 1.0).abs() < 4e-16, "at u = {u}");
        }
    }
}
