//! In-house deterministic random numbers: no external crates, no OS entropy.
//!
//! The whole stack is a *simulation*, so randomness has exactly two jobs:
//! be fast (Monte-Carlo BER burns one generator call per noise sample) and
//! be reproducible (every figure regenerates bit-identically from a seed).
//! Cryptographic quality is explicitly a non-goal, which is why the
//! generator is xoshiro256++ — a 256-bit-state shift/rotate generator that
//! passes BigCrush and costs a handful of ALU ops per draw, several times
//! cheaper than the ChaCha-based `StdRng` the stack previously pulled in
//! from the `rand` crate.
//!
//! Three pieces live here:
//!
//! * [`Rng`] — the sampler trait the whole workspace writes against:
//!   uniform `u64`/`f64`, bounded integers, Bernoulli, and the standard
//!   normal (Box–Muller) that AWGN and Rician fading consume,
//! * [`Xoshiro256pp`] — the concrete generator, seeded from a single `u64`
//!   through SplitMix64 (the seeding recipe xoshiro's authors recommend),
//! * [`SeedTree`] — deterministic derivation of *independent named
//!   streams* from one experiment seed, the substrate that makes chunked
//!   parallel Monte-Carlo (see [`crate::par`]) bit-identical at any thread
//!   count: every chunk's stream depends only on `(root, label, index)`,
//!   never on which thread runs it or how many chunks exist.

use crate::complex::Complex;
use std::f64::consts::TAU;

/// A deterministic random sampler.
///
/// Implementors provide [`Rng::next_u64`]; every sampler is derived from it
/// so all implementations agree on the mapping from raw stream to samples
/// (swapping generators never changes *how* bits become floats).
pub trait Rng {
    /// The next raw 64-bit draw from the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    fn f64(&mut self) -> f64 {
        // Top 53 bits → [0,1): the standard 2⁻⁵³ ladder.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u16` (e.g. a Gen2 RN16 handle).
    fn u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// A fair coin.
    fn bit(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform integer in `[0, n)` via the 128-bit multiply-shift reduction.
    ///
    /// The reduction carries a bias of at most `n / 2⁶⁴` — immeasurable for
    /// the slot counts and frame sizes simulated here — in exchange for
    /// being division-free and branch-free.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform index in `[0, n)` (convenience for slot/array picks).
    fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Log-uniform `f64` in `[lo, hi)`: each decade equally likely.
    /// Both bounds must be positive.
    fn log_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo, "log_range needs 0 < lo < hi");
        (self.in_range(lo.ln(), hi.ln())).exp()
    }

    /// Standard normal via Box–Muller (cosine branch).
    ///
    /// Consumes exactly two uniforms per sample (the `u1 = 0` rejection
    /// re-draws, at probability 2⁻⁵³), which keeps AWGN streams aligned
    /// with the previous `rand`-era implementation sample-for-sample.
    fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.f64();
            return (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
        }
    }

    /// Both Box–Muller branches from one `(u1, u2)` uniform pair:
    /// `(r·cos(2πu2), r·sin(2πu2))` with `r = √(−2·ln u1)`.
    ///
    /// The sine/cosine pair comes from the in-house turn-based
    /// [`crate::math::sincos_2pi`] (~1 ulp), so the first component agrees
    /// with what [`Rng::normal`] returns from the same stream position to
    /// a couple of ulps but is *not* bit-identical to it; the second is
    /// the sine branch the scalar sampler throws away. Consuming both —
    /// and paying the polynomial rather than the libm price for them —
    /// cuts the transcendental cost per sample to well under half, which
    /// is why every batch fill below is built on this pair. **Sampler
    /// v2**: batch consumers draw pairs, so a stream read through
    /// [`Rng::fill_normal`] diverges from one read through repeated
    /// [`Rng::normal`] calls.
    fn normal_pair(&mut self) -> (f64, f64) {
        loop {
            let u1 = self.f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = crate::math::sincos_2pi(u2);
            return (r * c, r * s);
        }
    }

    /// Fills `out` with standard normals, two per [`Rng::normal_pair`] —
    /// half the transcendental calls of the scalar path. An odd tail takes
    /// the cosine branch of one final pair and discards the sine, so
    /// `fill_normal` over any split of a buffer consumes the same stream
    /// as one call over the whole buffer only when splits are even-sized
    /// (batch callers use even chunk sizes for exactly this reason).
    ///
    /// Since the lane rework this runs the fused Box–Muller **block
    /// pipeline** ([`normal_pair_block`]'s fixed-width SoA sweeps) rather
    /// than a per-pair scalar chain, but every value and the stream
    /// position afterwards are bit-identical to the per-pair path — see
    /// [`Rng::fill_normal_reference`], which the differential tests hold
    /// this against.
    fn fill_normal(&mut self, out: &mut [f64]) {
        let mut z0 = [0.0f64; BM_BLOCK];
        let mut z1 = [0.0f64; BM_BLOCK];
        let mut blocks = out.chunks_exact_mut(2 * BM_BLOCK);
        for block in &mut blocks {
            normal_pair_block(self, &mut z0, &mut z1, BM_BLOCK);
            for ((pair, a), b) in block.chunks_exact_mut(2).zip(&z0).zip(&z1) {
                pair[0] = *a;
                pair[1] = *b;
            }
        }
        let rem = blocks.into_remainder();
        let pairs = rem.len() / 2;
        normal_pair_block(self, &mut z0, &mut z1, pairs);
        for ((pair, a), b) in rem.chunks_exact_mut(2).zip(&z0).zip(&z1) {
            pair[0] = *a;
            pair[1] = *b;
        }
        if let Some(last) = rem.get_mut(pairs * 2) {
            *last = self.normal_pair().0;
        }
    }

    /// The pre-lane batch fill (PR 3's sampler): one scalar
    /// [`Rng::normal_pair`] per two outputs, odd tail on the cosine
    /// branch. Values and stream consumption are **bit-identical** to
    /// [`Rng::fill_normal`]; kept verbatim as the reference side of the
    /// differential tests and of the `fill_normal_lanes_vs_batch` bench
    /// row, so the lane pipeline's win (and its continued bit-identity)
    /// stays measurable.
    fn fill_normal_reference(&mut self, out: &mut [f64]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            (pair[0], pair[1]) = self.normal_pair();
        }
        if let [last] = chunks.into_remainder() {
            *last = self.normal_pair().0;
        }
    }

    /// Fills `out` with circularly-symmetric unit-variance-per-component
    /// complex normals: one [`Rng::normal_pair`] per element (`re` takes
    /// the cosine branch, `im` the sine). This is the AWGN/fading workhorse
    /// — a complex sample needs exactly one pair, so nothing is discarded.
    /// Runs the same block pipeline as [`Rng::fill_normal`]; bit-identical
    /// to [`Rng::fill_complex_normal_reference`].
    fn fill_complex_normal(&mut self, out: &mut [Complex]) {
        let mut z0 = [0.0f64; BM_BLOCK];
        let mut z1 = [0.0f64; BM_BLOCK];
        let mut blocks = out.chunks_exact_mut(BM_BLOCK);
        for block in &mut blocks {
            normal_pair_block(self, &mut z0, &mut z1, BM_BLOCK);
            for ((z, a), b) in block.iter_mut().zip(&z0).zip(&z1) {
                *z = Complex::new(*a, *b);
            }
        }
        let rem = blocks.into_remainder();
        normal_pair_block(self, &mut z0, &mut z1, rem.len());
        for ((z, a), b) in rem.iter_mut().zip(&z0).zip(&z1) {
            *z = Complex::new(*a, *b);
        }
    }

    /// The pre-lane complex fill: one scalar [`Rng::normal_pair`] per
    /// element. Bit-identical to [`Rng::fill_complex_normal`]; kept as the
    /// differential-test reference.
    fn fill_complex_normal_reference(&mut self, out: &mut [Complex]) {
        for z in out {
            let (re, im) = self.normal_pair();
            *z = Complex::new(re, im);
        }
    }

    /// Structure-of-arrays twin of [`Rng::fill_complex_normal`]: pair `i`
    /// lands in `(re[i], im[i])` — the same values from the same stream
    /// positions, bit for bit, but split into two flat `f64` arrays
    /// instead of interleaved `Complex` slots. The lane-width Monte-Carlo
    /// kernels (BER and outage counting) consume this layout so their
    /// count passes sweep contiguous same-type data, which is what lets
    /// the compiler vectorize them.
    ///
    /// # Panics
    /// Panics if the two halves differ in length.
    fn fill_normal_soa(&mut self, re: &mut [f64], im: &mut [f64]) {
        assert_eq!(re.len(), im.len(), "SoA halves must have equal length");
        let mut z0 = [0.0f64; BM_BLOCK];
        let mut z1 = [0.0f64; BM_BLOCK];
        let mut re_blocks = re.chunks_exact_mut(BM_BLOCK);
        let mut im_blocks = im.chunks_exact_mut(BM_BLOCK);
        for (rb, ib) in (&mut re_blocks).zip(&mut im_blocks) {
            normal_pair_block(self, &mut z0, &mut z1, BM_BLOCK);
            rb.copy_from_slice(&z0);
            ib.copy_from_slice(&z1);
        }
        let rr = re_blocks.into_remainder();
        let ir = im_blocks.into_remainder();
        normal_pair_block(self, &mut z0, &mut z1, rr.len());
        rr.copy_from_slice(&z0[..rr.len()]);
        ir.copy_from_slice(&z1[..ir.len()]);
    }

    /// Fills `out` with uniform `f64`s in `[0, 1)`; element `i` is
    /// bit-identical to the `i`-th scalar [`Rng::f64`] draw.
    fn fill_uniform(&mut self, out: &mut [f64]) {
        for x in out {
            *x = self.f64();
        }
    }

    /// Fills `out` with fair coin flips; element `i` is bit-identical to
    /// the `i`-th scalar [`Rng::bit`] draw (one raw `u64` per bit), so
    /// batch bit generation never perturbs an existing seeded stream.
    fn fill_bits(&mut self, out: &mut [bool]) {
        for b in out {
            *b = self.bit();
        }
    }

    /// Rayleigh sample with scale `sigma` (envelope of two i.i.d. normals).
    fn rayleigh(&mut self, sigma: f64) -> f64 {
        loop {
            let u = self.f64();
            if u <= f64::MIN_POSITIVE {
                continue;
            }
            return sigma * (-2.0 * u.ln()).sqrt();
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Pairs per block of the fused Box–Muller pipeline: 64 pairs keep the
/// whole working set (one raw-draw buffer plus five `f64` work arrays,
/// ~3.5 KiB) on the stack and inside L1, while giving the fixed-width
/// inner sweeps enough trip count to fill vector registers.
pub const BM_BLOCK: usize = 64;

/// The 53-bit uniform ladder scale, 2⁻⁵³ (matches [`Rng::f64`]).
const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// One block of the fused Box–Muller pipeline: computes the first `n`
/// (≤ [`BM_BLOCK`]) pairs of the stream into `z0` (cosine branches) and
/// `z1` (sine branches), **bit-identical** to `n` scalar
/// [`Rng::normal_pair`] calls — same values, same stream consumption.
///
/// The fast path is a sequence of flat fixed-width sweeps over stack
/// arrays (structure-of-arrays, no per-pair control flow), which is what
/// lets the compiler autovectorize it:
///
/// 1. bulk-draw `2n` raw `u64`s (the only serially-dependent stage),
/// 2. map raws to uniforms with the 2⁻⁵³ ladder,
/// 3. `ln` hoisted into its own sweep (libm calls stay scalar, but
///    isolating them keeps every other pass branch-free),
/// 4. `√(−2·ln u1)` as a pure array sweep,
/// 5. [`crate::math::sincos_2pi_lanes`] — [`crate::math::LANES`]
///    polynomial lanes per pass,
/// 6. the output products.
///
/// Bit-identity holds because each pair undergoes exactly the scalar
/// chain's operation sequence — elementwise reordering across independent
/// pairs never changes any pair's own rounding (Rust does not contract
/// floating-point expressions, so vectorizing cannot introduce FMAs).
///
/// The scalar chain's rejection (`u1 ≤ f64::MIN_POSITIVE`, i.e. a raw
/// with all-zero top 53 bits, probability 2⁻⁵³ per pair) is detected by
/// an OR fold inside the draw loop; on a hit the block falls back —
/// essentially never — to a scalar replay that consumes the buffered
/// raws first and only then pulls fresh draws, leaving the stream
/// position exactly where the scalar chain would.
pub fn normal_pair_block<R: Rng + ?Sized>(
    rng: &mut R,
    z0: &mut [f64; BM_BLOCK],
    z1: &mut [f64; BM_BLOCK],
    n: usize,
) {
    use crate::math::{sincos_2pi, sincos_2pi_lanes, LANES};
    assert!(n <= BM_BLOCK, "block kernel serves at most BM_BLOCK pairs");
    // Draw the raws already deinterleaved (u1 raws and u2 raws in their
    // own arrays), folding the rejection check into the one serially-
    // dependent loop — every later sweep then walks contiguous memory.
    let mut raw1 = [0u64; BM_BLOCK];
    let mut raw2 = [0u64; BM_BLOCK];
    let mut any_rejected = false;
    for i in 0..n {
        let a = rng.next_u64();
        let b = rng.next_u64();
        any_rejected |= a >> 11 == 0;
        raw1[i] = a;
        raw2[i] = b;
    }
    if any_rejected {
        // Rare path: replay the scalar pair chain over the buffered raws
        // (re-interleaved to stream order), drawing extras only where
        // rejections demand them.
        let mut next = 0usize;
        let take = |next: &mut usize, rng: &mut R| -> u64 {
            let i = *next;
            *next += 1;
            if i < 2 * n {
                if i % 2 == 0 {
                    raw1[i / 2]
                } else {
                    raw2[i / 2]
                }
            } else {
                rng.next_u64()
            }
        };
        for i in 0..n {
            (z0[i], z1[i]) = loop {
                let u1 = (take(&mut next, rng) >> 11) as f64 * F64_SCALE;
                if u1 <= f64::MIN_POSITIVE {
                    continue;
                }
                let u2 = (take(&mut next, rng) >> 11) as f64 * F64_SCALE;
                let r = (-2.0 * u1.ln()).sqrt();
                let (s, c) = sincos_2pi(u2);
                break (r * c, r * s);
            };
        }
        return;
    }
    let mut u1 = [0.0f64; BM_BLOCK];
    let mut u2 = [0.0f64; BM_BLOCK];
    for i in 0..n {
        u1[i] = (raw1[i] >> 11) as f64 * F64_SCALE;
        u2[i] = (raw2[i] >> 11) as f64 * F64_SCALE;
    }
    let mut r = [0.0f64; BM_BLOCK];
    for (ri, a) in r[..n].iter_mut().zip(&u1) {
        *ri = a.ln();
    }
    for ri in r[..n].iter_mut() {
        *ri = (-2.0 * *ri).sqrt();
    }
    let mut s = [0.0f64; BM_BLOCK];
    let mut c = [0.0f64; BM_BLOCK];
    let full = n - n % LANES;
    for (i, chunk) in u2[..full].chunks_exact(LANES).enumerate() {
        let args: &[f64; LANES] = chunk.try_into().expect("chunks_exact yields LANES");
        let (sl, cl) = sincos_2pi_lanes(args);
        s[i * LANES..(i + 1) * LANES].copy_from_slice(&sl);
        c[i * LANES..(i + 1) * LANES].copy_from_slice(&cl);
    }
    for i in full..n {
        (s[i], c[i]) = sincos_2pi(u2[i]);
    }
    for i in 0..n {
        z0[i] = r[i] * c[i];
        z1[i] = r[i] * s[i];
    }
}

/// xoshiro256++ by Blackman & Vigna: 256-bit state, `rotl(s0+s3,23)+s0`
/// output scrambler. The workhorse generator for every Monte-Carlo loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from one `u64` by iterating SplitMix64,
    /// the initialization the xoshiro authors specify. The state cannot end
    /// up all-zero (SplitMix64 visits each 64-bit value exactly once per
    /// period, so four consecutive outputs are never all zero).
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(x);
        }
        Xoshiro256pp { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let out = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        out
    }
}

/// SplitMix64 finalizer: the standard 64-bit mixing function, used both to
/// expand seeds into generator state and to derive [`SeedTree`] streams.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A root seed from which independent named streams are derived.
///
/// Reproducibility discipline for multi-entity simulations: every tag,
/// every round, every Monte-Carlo chunk gets its *own* stream derived from
/// (experiment seed, label, index). Adding a tag, reordering who samples
/// first, or splitting work across threads never perturbs anyone else's
/// randomness — the property that makes A/B comparisons noise-free and
/// parallel execution bit-identical to serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// A tree rooted at `seed`.
    pub const fn new(seed: u64) -> Self {
        SeedTree { root: seed }
    }

    /// The derived seed for a labeled stream.
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut h = self.root ^ 0x9E37_79B9_7F4A_7C15;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = splitmix64(h);
        }
        splitmix64(h)
    }

    /// The derived seed for an indexed entity (e.g. tag #7, chunk #12).
    ///
    /// Stability contract: the result depends only on `(root, label,
    /// index)` — never on how many indices are in use — so growing a
    /// population or adding Monte-Carlo chunks leaves every existing
    /// stream untouched.
    pub fn seed_for_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.seed_for(label) ^ splitmix64(index.wrapping_add(1)))
    }

    /// A ready-to-use generator for a labeled stream.
    pub fn rng(&self, label: &str) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(self.seed_for(label))
    }

    /// A ready-to-use generator for an indexed entity.
    pub fn rng_indexed(&self, label: &str, index: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(self.seed_for_indexed(label, index))
    }

    /// A sub-tree for a nested scope (e.g. one repetition of a sweep).
    pub fn subtree(&self, label: &str) -> SeedTree {
        SeedTree {
            root: self.seed_for(label),
        }
    }

    /// A sub-tree for an indexed scope (e.g. sweep point #3).
    pub fn subtree_indexed(&self, label: &str, index: u64) -> SeedTree {
        SeedTree {
            root: self.seed_for_indexed(label, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the all-SplitMix64(1..4) state seeded from 0,
        // locked down so the stream can never silently change.
        let mut a = Xoshiro256pp::seed_from(0);
        let mut b = Xoshiro256pp::seed_from(0);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        // Distinct seeds produce distinct streams.
        let mut c = Xoshiro256pp::seed_from(1);
        assert_ne!(first[0], c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Xoshiro256pp::seed_from(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256pp::seed_from(17);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xoshiro256pp::seed_from(23);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((29_000..31_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256pp::seed_from(31);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_pair_cosine_branch_tracks_scalar_normal() {
        // The pair's first component is the scalar sampler's value at the
        // same stream position up to the sincos_2pi-vs-libm difference
        // (~a couple of ulps; see mmtag_rf::math). Both consume one
        // (u1, u2) uniform pair per call, so the two streams stay aligned
        // draw for draw — verified by the exact post-loop stream check.
        let mut a = Xoshiro256pp::seed_from(77);
        let mut b = Xoshiro256pp::seed_from(77);
        for _ in 0..1000 {
            let scalar = a.normal();
            let pair = b.normal_pair().0;
            assert!(
                (scalar - pair).abs() <= 1e-12 * scalar.abs().max(1.0),
                "{scalar} vs {pair}"
            );
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_normal_matches_pair_draws_and_handles_odd_tails() {
        for n in [0usize, 1, 2, 3, 7, 64, 1001] {
            let mut a = Xoshiro256pp::seed_from(123);
            let mut b = Xoshiro256pp::seed_from(123);
            let mut out = vec![0.0f64; n];
            a.fill_normal(&mut out);
            let mut want = Vec::with_capacity(n);
            while want.len() + 2 <= n {
                let (z0, z1) = b.normal_pair();
                want.push(z0);
                want.push(z1);
            }
            if want.len() < n {
                want.push(b.normal_pair().0);
            }
            assert_eq!(
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
            // Both consumed the same amount of stream.
            assert_eq!(a.next_u64(), b.next_u64(), "n={n}");
        }
    }

    #[test]
    fn fill_normal_moments() {
        let mut r = Xoshiro256pp::seed_from(31);
        let n = 200_000;
        let mut samples = vec![0.0f64; n];
        r.fill_normal(&mut samples);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        // The sine branch must be as Gaussian as the cosine branch: check
        // odd-index (sine) moments alone.
        let sines: Vec<f64> = samples.iter().skip(1).step_by(2).copied().collect();
        let sm = sines.iter().sum::<f64>() / sines.len() as f64;
        let sv = sines.iter().map(|x| (x - sm) * (x - sm)).sum::<f64>() / sines.len() as f64;
        assert!(
            sm.abs() < 0.02 && (sv - 1.0).abs() < 0.03,
            "sine branch {sm}/{sv}"
        );
    }

    #[test]
    fn golden_noise_stream_sampler_v2() {
        // Seeded golden for the Gaussian stream, recorded under sampler v2
        // (batch Box–Muller consuming BOTH branches per (u1, u2) draw,
        // sine/cosine from the polynomial `mmtag_rf::math::sincos_2pi`).
        // PR 3 moved the hot paths from the cosine-only libm v1 sampler to
        // v2, which reorders every noise stream; these bits pin the v2
        // layout so the next sampler change is a deliberate re-record, not
        // an accident. Even indices are the cosine branch and agree with
        // scalar `normal()` at the same stream position to a few ulps.
        let tree = SeedTree::new(0x601D);
        let mut rng = tree.rng("noise-golden");
        let mut buf = [0.0f64; 6];
        rng.fill_normal(&mut buf);
        let want = [
            0x3fe3a0d83b823fe5u64, // +0.61338435766992616
            0x3ff488d33ea4887eu64, // +1.28340458364303300
            0x3ff8d833e8d97411u64, // +1.55278387982184918
            0xbfd932d8724db045u64, // -0.39372836267898875
            0xbfb6ad0f3e45ffddu64, // -0.08857817907664818
            0x3ff6b5d0be1ebf12u64, // +1.41938852563538775
        ];
        let got: Vec<u64> = buf.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "sampler v2 noise stream changed — re-record");
        // Cross-check the cosine branch against the scalar sampler.
        let mut scalar = tree.rng("noise-golden");
        let v1 = scalar.normal();
        assert!((v1 - buf[0]).abs() <= 1e-12 * v1.abs().max(1.0));
    }

    /// Emits a canned prefix of raws, then falls through to xoshiro —
    /// the only way to deterministically land a `raw >> 11 == 0` draw on
    /// the Box–Muller rejection check.
    struct ScriptedRng {
        script: Vec<u64>,
        at: usize,
        tail: Xoshiro256pp,
    }

    impl ScriptedRng {
        fn new(script: Vec<u64>, seed: u64) -> Self {
            ScriptedRng {
                script,
                at: 0,
                tail: Xoshiro256pp::seed_from(seed),
            }
        }
    }

    impl Rng for ScriptedRng {
        fn next_u64(&mut self) -> u64 {
            if self.at < self.script.len() {
                self.at += 1;
                self.script[self.at - 1]
            } else {
                self.tail.next_u64()
            }
        }
    }

    #[test]
    fn lane_pipeline_fill_normal_is_bit_identical_to_reference() {
        // The ISSUE-6 differential ladder: zero, sub-lane, exact-lane,
        // lane+1, block-straddling, and bulk lengths. Values AND stream
        // position must match the scalar pair chain exactly.
        for n in [0usize, 1, 7, 8, 9, 127, 128, 129, 1000, 100_000] {
            let mut a = Xoshiro256pp::seed_from(0xD1FF ^ n as u64);
            let mut b = a.clone();
            let mut lanes = vec![0.0f64; n];
            let mut reference = vec![0.0f64; n];
            a.fill_normal(&mut lanes);
            b.fill_normal_reference(&mut reference);
            for (i, (x, y)) in lanes.iter().zip(&reference).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n} sample {i}");
            }
            assert_eq!(a.next_u64(), b.next_u64(), "n={n} stream position");
        }
    }

    #[test]
    fn lane_pipeline_fill_complex_normal_is_bit_identical_to_reference() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000, 100_000] {
            let mut a = Xoshiro256pp::seed_from(0xC03 ^ n as u64);
            let mut b = a.clone();
            let mut lanes = vec![Complex::ZERO; n];
            let mut reference = vec![Complex::ZERO; n];
            a.fill_complex_normal(&mut lanes);
            b.fill_complex_normal_reference(&mut reference);
            for (i, (x, y)) in lanes.iter().zip(&reference).enumerate() {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "n={n} sample {i} re");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "n={n} sample {i} im");
            }
            assert_eq!(a.next_u64(), b.next_u64(), "n={n} stream position");
        }
    }

    #[test]
    fn fill_normal_soa_matches_complex_fill_bit_for_bit() {
        for n in [0usize, 1, 7, 8, 9, 100, 1000] {
            let mut a = Xoshiro256pp::seed_from(0x50A ^ n as u64);
            let mut b = a.clone();
            let mut re = vec![0.0f64; n];
            let mut im = vec![0.0f64; n];
            a.fill_normal_soa(&mut re, &mut im);
            let mut zs = vec![Complex::ZERO; n];
            b.fill_complex_normal(&mut zs);
            for i in 0..n {
                assert_eq!(re[i].to_bits(), zs[i].re.to_bits(), "n={n} pair {i} re");
                assert_eq!(im[i].to_bits(), zs[i].im.to_bits(), "n={n} pair {i} im");
            }
            assert_eq!(a.next_u64(), b.next_u64(), "n={n} stream position");
        }
    }

    #[test]
    fn rejection_fallback_replays_the_scalar_chain_exactly() {
        // Plant `raw >> 11 == 0` draws (the 2⁻⁵³ Box–Muller rejection) at
        // the start of a block, mid-block, and as the very last pair's u1
        // — including one script that forces TWO consecutive rejections —
        // and require the block pipeline to match the scalar chain bit for
        // bit, stream position included.
        let ok = 0xABCD_EF01_2345_6789u64; // any raw with top 53 bits set
        let zero = 0x7FFu64; // raw >> 11 == 0 but nonzero low bits
        let scripts: Vec<Vec<u64>> = vec![
            vec![zero],                                     // first pair's u1 rejected
            vec![ok, ok, zero, zero, ok],                   // double rejection mid-block
            [vec![ok; 126], vec![zero]].concat(),           // last pair of block 0
            [vec![ok; 128], vec![zero, ok, zero]].concat(), // block 1 + tail
        ];
        for (si, script) in scripts.iter().enumerate() {
            for n in [1usize, 9, 128, 200] {
                let mut a = ScriptedRng::new(script.clone(), 77);
                let mut b = ScriptedRng::new(script.clone(), 77);
                let mut lanes = vec![0.0f64; n];
                let mut reference = vec![0.0f64; n];
                a.fill_normal(&mut lanes);
                b.fill_normal_reference(&mut reference);
                for (i, (x, y)) in lanes.iter().zip(&reference).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "script {si} n={n} sample {i}");
                }
                assert_eq!(a.next_u64(), b.next_u64(), "script {si} n={n} stream");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn soa_halves_must_match_in_length() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut re = vec![0.0f64; 4];
        let mut im = vec![0.0f64; 5];
        rng.fill_normal_soa(&mut re, &mut im);
    }

    #[test]
    fn fill_complex_normal_is_one_pair_per_sample() {
        let mut a = Xoshiro256pp::seed_from(9);
        let mut b = Xoshiro256pp::seed_from(9);
        let mut out = vec![Complex::ZERO; 257];
        a.fill_complex_normal(&mut out);
        for z in &out {
            let (re, im) = b.normal_pair();
            assert_eq!(z.re.to_bits(), re.to_bits());
            assert_eq!(z.im.to_bits(), im.to_bits());
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_uniform_and_fill_bits_match_scalar_draws() {
        let mut a = Xoshiro256pp::seed_from(55);
        let mut b = Xoshiro256pp::seed_from(55);
        let mut us = vec![0.0f64; 129];
        a.fill_uniform(&mut us);
        for u in &us {
            assert_eq!(u.to_bits(), b.f64().to_bits());
        }
        let mut bits = vec![false; 129];
        a.fill_bits(&mut bits);
        for bit in &bits {
            assert_eq!(*bit, b.bit());
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bit_is_fair() {
        let mut r = Xoshiro256pp::seed_from(41);
        let ones = (0..100_000).filter(|_| r.bit()).count();
        assert!((49_000..51_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn log_range_covers_decades() {
        let mut r = Xoshiro256pp::seed_from(43);
        let low = (0..10_000)
            .filter(|_| r.log_range(1e-6, 1.0) < 1e-3)
            .count();
        // Half the decades sit below 1e-3, so about half the mass does too.
        assert!((4_500..5_500).contains(&low), "low {low}");
    }

    #[test]
    fn trait_is_object_and_reborrow_safe() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.f64()
        }
        let mut r = Xoshiro256pp::seed_from(5);
        let via_reborrow = draw(&mut r);
        let dynamic: &mut dyn Rng = &mut r;
        let via_dyn = draw(dynamic);
        assert_ne!(via_reborrow, via_dyn); // stream advanced, not reset
    }

    #[test]
    fn seed_tree_streams_are_deterministic() {
        let t = SeedTree::new(42);
        assert_eq!(t.seed_for("tags"), SeedTree::new(42).seed_for("tags"));
        let a = t.rng("x").f64();
        let b = t.rng("x").f64();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_tree_labels_and_roots_differ() {
        let t = SeedTree::new(7);
        assert_ne!(t.seed_for("alpha"), t.seed_for("beta"));
        assert_ne!(t.seed_for("a"), t.seed_for("aa"));
        assert_ne!(t.seed_for(""), t.seed_for("x"));
        assert_ne!(
            SeedTree::new(1).seed_for("same"),
            SeedTree::new(2).seed_for("same")
        );
    }

    #[test]
    fn indexed_streams_are_stable_under_growth() {
        // The parallel-determinism keystone: chunk #3's stream is identical
        // whether the run has 4 chunks or 4000.
        let t = SeedTree::new(5);
        let before: Vec<u64> = (0..4).map(|i| t.seed_for_indexed("chunk", i)).collect();
        let after: Vec<u64> = (0..4000).map(|i| t.seed_for_indexed("chunk", i)).collect();
        assert_eq!(&before[..], &after[..4]);
        assert_ne!(before[0], t.seed_for("chunk"));
    }

    #[test]
    fn subtrees_namespace_cleanly() {
        let t = SeedTree::new(11);
        assert_ne!(
            t.subtree("rep0").seed_for("tags"),
            t.subtree("rep1").seed_for("tags")
        );
        assert_eq!(
            t.subtree("rep0").seed_for("tags"),
            t.subtree("rep0").seed_for("tags")
        );
        assert_ne!(
            t.subtree_indexed("snr", 0).seed_for("chunk"),
            t.subtree_indexed("snr", 1).seed_for("chunk")
        );
    }

    #[test]
    fn derived_seeds_look_uniform() {
        let t = SeedTree::new(2024);
        let ones: u32 = (0..10_000u64)
            .map(|i| (t.seed_for_indexed("u", i) >> 63) as u32)
            .sum();
        assert!((4500..5500).contains(&ones), "high-bit count {ones}");
    }
}
