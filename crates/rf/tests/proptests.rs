//! Randomized property tests for the RF foundations: the algebraic
//! identities every upper layer silently relies on.
//!
//! Each property is exercised over a few hundred deterministic random
//! cases drawn from the in-house [`mmtag_rf::rng`] generator (the stack is
//! offline-only, so no external property-testing framework). A failing
//! case prints its inputs, which — with the fixed seed — is all that is
//! needed to reproduce it.

use mmtag_rf::complex::Complex;
use mmtag_rf::db::{amplitude_to_db, db_to_amplitude, db_to_lin, lin_to_db};
use mmtag_rf::rng::{Rng, SeedTree};
use mmtag_rf::special::{q_function, q_inverse};
use mmtag_rf::units::{Angle, Db, Dbm, Distance, Frequency};

const CASES: usize = 256;

fn cases(label: &'static str) -> impl Iterator<Item = mmtag_rf::rng::Xoshiro256pp> {
    let tree = SeedTree::new(0x5EED_CA5E);
    (0..CASES).map(move |i| tree.rng_indexed(label, i as u64))
}

/// dB ↔ linear power conversions invert each other across 18 decades.
#[test]
fn db_roundtrip() {
    for mut rng in cases("db-roundtrip") {
        let x = rng.log_range(1e-9, 1e9);
        let back = db_to_lin(lin_to_db(x));
        assert!((back - x).abs() / x < 1e-10, "x={x} back={back}");
    }
}

/// Amplitude dB conversions likewise.
#[test]
fn amplitude_db_roundtrip() {
    for mut rng in cases("amp-roundtrip") {
        let x = rng.log_range(1e-6, 1e6);
        let back = db_to_amplitude(amplitude_to_db(x));
        assert!((back - x).abs() / x < 1e-10, "x={x} back={back}");
    }
}

/// Adding dB values multiplies the linear ratios.
#[test]
fn db_addition_is_linear_multiplication() {
    for mut rng in cases("db-add") {
        let a = rng.in_range(-60.0, 60.0);
        let b = rng.in_range(-60.0, 60.0);
        let sum = Db::new(a) + Db::new(b);
        let product = Db::new(a).linear() * Db::new(b).linear();
        assert!(
            (sum.linear() - product).abs() / product < 1e-10,
            "a={a} b={b}"
        );
    }
}

/// `Dbm ± Db` then the reverse lands back on the original power.
#[test]
fn dbm_gain_then_loss() {
    for mut rng in cases("dbm-gain") {
        let p = rng.in_range(-120.0, 40.0);
        let g = rng.in_range(0.0, 80.0);
        let back = (Dbm::new(p) + Db::new(g)) - Db::new(g);
        assert!((back.dbm() - p).abs() < 1e-12, "p={p} g={g}");
    }
}

/// Complex multiplication preserves |a|·|b| and adds phases.
#[test]
fn complex_mul_polar() {
    for mut rng in cases("cmul") {
        let (ra, pa) = (rng.log_range(0.01, 100.0), rng.in_range(-3.0, 3.0));
        let (rb, pb) = (rng.log_range(0.01, 100.0), rng.in_range(-3.0, 3.0));
        let p = Complex::from_polar(ra, pa) * Complex::from_polar(rb, pb);
        assert!(
            (p.abs() - ra * rb).abs() / (ra * rb) < 1e-10,
            "ra={ra} rb={rb}"
        );
        let want = Angle::from_radians(pa + pb).normalized().radians();
        let got = Angle::from_radians(p.arg()).normalized().radians();
        let diff = (got - want).abs();
        assert!(
            diff < 1e-9 || (diff - std::f64::consts::TAU).abs() < 1e-9,
            "pa={pa} pb={pb} got={got} want={want}"
        );
    }
}

/// `z·conj(z)` is always real, non-negative, and equals |z|².
#[test]
fn conjugate_product_is_power() {
    for mut rng in cases("conj") {
        let z = Complex::new(rng.in_range(-100.0, 100.0), rng.in_range(-100.0, 100.0));
        let p = z * z.conj();
        assert!(p.im.abs() < 1e-9 * (1.0 + p.re.abs()), "z={z:?}");
        assert!(
            (p.re - z.norm_sqr()).abs() < 1e-9 * (1.0 + p.re.abs()),
            "z={z:?}"
        );
    }
}

/// Unit phasors compose without losing magnitude (the array-factor hot
/// loop depends on this staying at 1.0 over thousands of steps).
#[test]
fn phasor_rotation_preserves_magnitude() {
    for mut rng in cases("phasor") {
        let step = rng.in_range(-0.5, 0.5);
        let rot = Complex::from_phase(step);
        let mut ph = Complex::ONE;
        for _ in 0..4096 {
            ph *= rot;
        }
        assert!((ph.abs() - 1.0).abs() < 1e-9, "step={step}");
    }
}

/// Q is strictly decreasing and its bisection inverse really inverts it.
#[test]
fn q_inverse_inverts() {
    for mut rng in cases("qinv") {
        let p = rng.log_range(1e-8, 0.4999);
        let x = q_inverse(p);
        let back = q_function(x);
        assert!((back - p).abs() / p < 1e-4, "p={p} x={x} back={back}");
    }
}

/// Angle normalization is idempotent and lands in (−π, π].
#[test]
fn angle_normalization_idempotent() {
    for mut rng in cases("angle-norm") {
        let raw = rng.in_range(-100.0, 100.0);
        let a = Angle::from_radians(raw).normalized();
        assert!(a.radians() > -std::f64::consts::PI - 1e-12, "raw={raw}");
        assert!(a.radians() <= std::f64::consts::PI + 1e-12, "raw={raw}");
        let again = a.normalized();
        assert!((again.radians() - a.radians()).abs() < 1e-12, "raw={raw}");
    }
}

/// Angular separation is a metric-ish: symmetric, bounded by π.
#[test]
fn separation_symmetric_bounded() {
    for mut rng in cases("separation") {
        let x = Angle::from_radians(rng.in_range(-10.0, 10.0));
        let y = Angle::from_radians(rng.in_range(-10.0, 10.0));
        let s1 = x.separation(y).radians();
        let s2 = y.separation(x).radians();
        assert!((s1 - s2).abs() < 1e-12);
        assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&s1));
    }
}

/// Distance unit conversions roundtrip.
#[test]
fn feet_meters_roundtrip() {
    for mut rng in cases("feet") {
        let ft = rng.log_range(0.001, 1e6);
        let d = Distance::from_feet(ft);
        assert!((d.feet() - ft).abs() / ft < 1e-12, "ft={ft}");
    }
}

/// λ·f = c for any frequency.
#[test]
fn wavelength_frequency_product() {
    for mut rng in cases("lambda") {
        let ghz = rng.in_range(0.1, 300.0);
        let f = Frequency::from_ghz(ghz);
        let c = f.wavelength().meters() * f.hz();
        assert!(
            (c - mmtag_rf::constants::SPEED_OF_LIGHT).abs() < 1.0,
            "ghz={ghz}"
        );
    }
}
