//! Property-based tests for the RF foundations: the algebraic identities
//! every upper layer silently relies on.

use mmtag_rf::complex::Complex;
use mmtag_rf::db::{amplitude_to_db, db_to_amplitude, db_to_lin, lin_to_db};
use mmtag_rf::special::{q_function, q_inverse};
use mmtag_rf::units::{Angle, Db, Dbm, Distance, Frequency};
use proptest::prelude::*;

proptest! {
    /// dB ↔ linear power conversions invert each other across 18 decades.
    #[test]
    fn db_roundtrip(x in 1e-9f64..1e9) {
        let back = db_to_lin(lin_to_db(x));
        prop_assert!((back - x).abs() / x < 1e-10);
    }

    /// Amplitude dB conversions likewise.
    #[test]
    fn amplitude_db_roundtrip(x in 1e-6f64..1e6) {
        let back = db_to_amplitude(amplitude_to_db(x));
        prop_assert!((back - x).abs() / x < 1e-10);
    }

    /// Adding dB values multiplies the linear ratios.
    #[test]
    fn db_addition_is_linear_multiplication(a in -60f64..60.0, b in -60f64..60.0) {
        let sum = Db::new(a) + Db::new(b);
        let product = Db::new(a).linear() * Db::new(b).linear();
        prop_assert!((sum.linear() - product).abs() / product < 1e-10);
    }

    /// `Dbm ± Db` then the reverse lands back on the original power.
    #[test]
    fn dbm_gain_then_loss(p in -120f64..40.0, g in 0f64..80.0) {
        let back = (Dbm::new(p) + Db::new(g)) - Db::new(g);
        prop_assert!((back.dbm() - p).abs() < 1e-12);
    }

    /// Complex multiplication preserves |a|·|b| and adds phases.
    #[test]
    fn complex_mul_polar(ra in 0.01f64..100.0, pa in -3.0f64..3.0,
                         rb in 0.01f64..100.0, pb in -3.0f64..3.0) {
        let a = Complex::from_polar(ra, pa);
        let b = Complex::from_polar(rb, pb);
        let p = a * b;
        prop_assert!((p.abs() - ra * rb).abs() / (ra * rb) < 1e-10);
        let want = Angle::from_radians(pa + pb).normalized().radians();
        let got = Angle::from_radians(p.arg()).normalized().radians();
        let diff = (got - want).abs();
        prop_assert!(diff < 1e-9 || (diff - std::f64::consts::TAU).abs() < 1e-9);
    }

    /// `z·conj(z)` is always real, non-negative, and equals |z|².
    #[test]
    fn conjugate_product_is_power(re in -100f64..100.0, im in -100f64..100.0) {
        let z = Complex::new(re, im);
        let p = z * z.conj();
        prop_assert!(p.im.abs() < 1e-9 * (1.0 + p.re.abs()));
        prop_assert!((p.re - z.norm_sqr()).abs() < 1e-9 * (1.0 + p.re.abs()));
    }

    /// Unit phasors compose without losing magnitude (the array-factor
    /// hot loop depends on this staying at 1.0 over thousands of steps).
    #[test]
    fn phasor_rotation_preserves_magnitude(step in -0.5f64..0.5) {
        let rot = Complex::from_phase(step);
        let mut ph = Complex::ONE;
        for _ in 0..4096 {
            ph *= rot;
        }
        prop_assert!((ph.abs() - 1.0).abs() < 1e-9);
    }

    /// Q is strictly decreasing and its bisection inverse really inverts it.
    #[test]
    fn q_inverse_inverts(p in 1e-8f64..0.4999) {
        let x = q_inverse(p);
        let back = q_function(x);
        prop_assert!((back - p).abs() / p < 1e-4, "p={p} x={x} back={back}");
    }

    /// Angle normalization is idempotent and lands in (−π, π].
    #[test]
    fn angle_normalization_idempotent(raw in -100f64..100.0) {
        let a = Angle::from_radians(raw).normalized();
        prop_assert!(a.radians() > -std::f64::consts::PI - 1e-12);
        prop_assert!(a.radians() <= std::f64::consts::PI + 1e-12);
        let again = a.normalized();
        prop_assert!((again.radians() - a.radians()).abs() < 1e-12);
    }

    /// Angular separation is a metric-ish: symmetric, bounded by π.
    #[test]
    fn separation_symmetric_bounded(a in -10f64..10.0, b in -10f64..10.0) {
        let x = Angle::from_radians(a);
        let y = Angle::from_radians(b);
        let s1 = x.separation(y).radians();
        let s2 = y.separation(x).radians();
        prop_assert!((s1 - s2).abs() < 1e-12);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&s1));
    }

    /// Distance unit conversions roundtrip.
    #[test]
    fn feet_meters_roundtrip(ft in 0.001f64..1e6) {
        let d = Distance::from_feet(ft);
        prop_assert!((d.feet() - ft).abs() / ft < 1e-12);
    }

    /// λ·f = c for any frequency.
    #[test]
    fn wavelength_frequency_product(ghz in 0.1f64..300.0) {
        let f = Frequency::from_ghz(ghz);
        let c = f.wavelength().meters() * f.hz();
        prop_assert!((c - mmtag_rf::constants::SPEED_OF_LIGHT).abs() < 1.0);
    }
}
