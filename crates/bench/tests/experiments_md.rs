//! EXPERIMENTS.md ↔ registry consistency: the "Registry table" section of
//! the experiment index must list exactly the scenarios the registry
//! exposes, in registry order. Adding an experiment without documenting
//! it (or documenting one that does not exist) fails here.

use mmtag_bench::scenarios::registry;

const EXPERIMENTS_MD: &str = include_str!("../../../EXPERIMENTS.md");

/// Scenario IDs out of the registry-table rows, in file order. Rows look
/// like ``| `e05-ber` | §8 — … | `mmtag-phy` |``; only the canonical
/// table's rows start with a backticked `e`-ID in the first column.
fn documented_ids() -> Vec<String> {
    EXPERIMENTS_MD
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("| `e")?;
            let id = rest.split('`').next()?;
            Some(format!("e{id}"))
        })
        .collect()
}

#[test]
fn registry_table_matches_the_registry_exactly() {
    let documented = documented_ids();
    let reg = registry();
    let registered: Vec<String> = reg.names().iter().map(|n| n.to_string()).collect();
    assert!(
        !documented.is_empty(),
        "EXPERIMENTS.md has no registry-table rows (expected lines starting \"| `e\")"
    );
    assert_eq!(
        documented, registered,
        "EXPERIMENTS.md registry table and registry().names() disagree \
         (order matters; fix whichever side is stale)"
    );
}

#[test]
fn registry_table_rows_carry_a_crate_column() {
    for line in EXPERIMENTS_MD.lines().filter(|l| l.starts_with("| `e")) {
        let cols: Vec<&str> = line.trim_matches('|').split('|').collect();
        assert_eq!(cols.len(), 3, "registry-table row is not 3 columns: {line}");
        assert!(
            cols[2].contains("`mmtag"),
            "row missing an owning-crate name: {line}"
        );
    }
}
