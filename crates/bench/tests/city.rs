//! Shard-merge determinism at the registry level: the city scenarios'
//! rendered tables are bit-identical at any worker-thread count, and the
//! engine's tables are bit-identical across shard counts and against the
//! heap-scheduler reference. Mirrors the thread-invariance harness of
//! `tests/obs.rs` (this file never touches the obs level, so it needs no
//! serialization guard).

use mmtag_bench::scenarios::registry;
use mmtag_mac::city::{CityConfig, CityEngine};
use mmtag_sim::scenario::Runner;
use mmtag_sim::SeedTree;

#[test]
fn city_scenario_tables_are_bit_identical_at_any_thread_count() {
    let reg = registry();
    for name in ["e27-city-density", "e28-city-mobility"] {
        let s = reg.get(name).expect("city scenario is registered");
        let baseline = Runner::with_threads(1).run_minimized(s, 2, 50).render();
        for threads in [2usize, 8] {
            let rendered = Runner::with_threads(threads)
                .run_minimized(s, 2, 50)
                .render();
            assert_eq!(
                rendered, baseline,
                "{name}: threads={threads} perturbed the rendered tables"
            );
        }
    }
}

#[test]
fn sharded_engine_reproduces_the_heap_reference_bit_for_bit() {
    let cfg = CityConfig::dense(2_000, 5);
    let tree = SeedTree::new(0xC17E);
    let mut reference = CityEngine::new(cfg, tree);
    let want = reference.run_rounds_reference();
    assert!(want.tags_read > 0);
    for threads in [1usize, 2, 8] {
        let mut eng = CityEngine::new(cfg, tree);
        assert_eq!(eng.run_rounds(threads), want, "threads={threads}");
        assert_eq!(eng.tags().read, reference.tags().read, "threads={threads}");
    }
}

#[test]
fn stats_do_not_depend_on_the_shard_count() {
    let base = CityConfig::dense(1_500, 4);
    let tree = SeedTree::new(0x5AA4D);
    let mut one = CityEngine::new(CityConfig { shards: 1, ..base }, tree);
    let want = one.run_rounds(4);
    for shards in [2usize, 5, 16, 64] {
        let mut eng = CityEngine::new(CityConfig { shards, ..base }, tree);
        assert_eq!(eng.run_rounds(4), want, "shards={shards}");
        assert_eq!(eng.tags().read, one.tags().read, "shards={shards}");
    }
}
