//! Registry-level guarantees: completeness, determinism across thread
//! counts, artifact sanity, and a smoke pass over every scenario.

use mmtag_bench::scenarios::registry;
use mmtag_sim::scenario::Runner;

#[test]
fn every_scenario_smokes_and_is_thread_count_invariant() {
    let reg = registry();
    assert_eq!(reg.len(), 31);
    let serial = Runner::with_threads(1);
    let parallel = Runner::with_threads(8);
    for s in reg.iter() {
        let a = serial.run_minimized(s, 3, 200);
        let b = parallel.run_minimized(s, 3, 200);
        assert!(!a.tables.is_empty(), "{}: no tables", s.spec().name);
        assert_eq!(
            a.render(),
            b.render(),
            "{}: output depends on thread count",
            s.spec().name
        );
        assert_eq!(a.manifest.threads, 1);
        assert_eq!(b.manifest.threads, 8);
        assert_eq!(a.manifest.spec_hash, b.manifest.spec_hash);
    }
}

#[test]
fn full_size_run_is_thread_count_invariant() {
    // The link-budget sweep at its published size, 1 thread vs 8: the
    // tentpole's bit-identity promise at full scale.
    let reg = registry();
    let s = reg.get("e02-link-budget").unwrap();
    let a = Runner::with_threads(1).run(s);
    let b = Runner::with_threads(8).run(s);
    assert_eq!(a.render(), b.render());
}

#[test]
fn manifest_records_the_spec() {
    let reg = registry();
    let record = Runner::new().run(reg.get("e02-link-budget").unwrap());
    let m = &record.manifest;
    assert_eq!(m.scenario, "e02-link-budget");
    assert_eq!(m.seed, reg.get("e02-link-budget").unwrap().spec().seed);
    assert!(m.threads >= 1);
    assert!(m.wall_ms >= 0.0);
    // The hash pins the canonical spec: re-running yields the same value.
    let again = Runner::new().run(reg.get("e02-link-budget").unwrap());
    assert_eq!(m.spec_hash, again.manifest.spec_hash);
}

#[test]
fn json_and_csv_artifacts_are_sane() {
    let reg = registry();
    let record = Runner::new().run(reg.get("e06-beamwidth").unwrap());

    let json = record.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"manifest\""));
    assert!(json.contains("\"e06-beamwidth\""));
    assert!(json.contains("\"tables\""));
    // Balanced braces/brackets — the writer is hand-rolled, so check it.
    let balance = |open: char, close: char| {
        json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}') && balance('[', ']'));

    let csv = record.to_csv();
    assert!(csv.starts_with("# scenario=e06-beamwidth"));
    // Every non-comment line has the same field count as its header.
    let mut width = None;
    for line in csv.lines() {
        if line.starts_with('#') {
            width = None;
            continue;
        }
        let n = line.split(',').count();
        match width {
            None => width = Some(n),
            Some(w) => assert_eq!(n, w, "ragged CSV row: {line}"),
        }
    }
}

#[test]
fn seed_override_changes_monte_carlo_output() {
    let reg = registry();
    let s = reg.get("e21-capture").unwrap();
    let runner = Runner::new();
    let base = runner.run_minimized(s, 3, 200);
    let reseeded = s.with_spec(s.spec().clone().with_seed(999));
    let other = runner.run_minimized(&*reseeded, 3, 200);
    assert_ne!(base.render(), other.render());
    assert_ne!(base.manifest.spec_hash, other.manifest.spec_hash);
}
