//! Integration tests for the `mmtag serve` daemon: the determinism
//! contract (replayed request logs produce byte-identical response
//! bodies at any worker count), bounded admission, single-flight
//! deduplication, and transport liveness.

use mmtag_bench::loadgen::{generate, Mix};
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, Registry, RunContext, Scenario, ScenarioSpec};
use mmtag_sim::serve::{Client, Engine, EngineConfig, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mmtag-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Replays one deterministic request log over a single connection and
/// returns the concatenated response bodies.
fn replay(server: &Server, lines: &[String]) -> String {
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let mut transcript = String::new();
    for line in lines {
        transcript.push_str(&client.roundtrip(line).unwrap());
        transcript.push('\n');
    }
    transcript
}

/// The acceptance-criteria differential: the same seeded request log,
/// replayed against daemons at 1 and 4 worker threads (executors *and*
/// per-job threads), must produce byte-identical response bodies. Each
/// daemon gets a fresh cache directory so both start cold.
#[test]
fn replayed_request_log_is_byte_identical_across_worker_counts() {
    let mix = Mix {
        scenario: "e02-link-budget".to_string(),
        seed_pool: 4,
        trials: 50,
        points: 6,
        run_percent: 30,
        sweep_percent: 0,
        sweep_points: 4,
        x_range: (2.0, 12.0),
    };
    let lines: Vec<String> = generate(&mix, 60, 0xD1FF)
        .into_iter()
        .map(|r| r.line)
        .collect();
    let mut transcripts = Vec::new();
    for workers in [1usize, 4] {
        let cache = temp_dir(&format!("diff-{workers}"));
        let server = Server::builder(mmtag_bench::scenarios::registry())
            .tcp("127.0.0.1:0")
            .cache(mmtag_sim::cache::RunCache::at(&cache))
            .config(EngineConfig {
                executors: workers,
                job_threads: workers,
                queue_capacity: 32,
                memory_capacity: 32,
            })
            .start()
            .unwrap();
        let transcript = replay(&server, &lines);
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&cache);
        transcripts.push(transcript);
    }
    assert!(
        transcripts[0] == transcripts[1],
        "response bodies diverged between 1 and 4 worker threads"
    );
    // Sanity: the log exercised both ops and succeeded.
    assert!(transcripts[0].contains("\"op\":\"run\""));
    assert!(transcripts[0].contains("\"op\":\"query\""));
    assert!(
        !transcripts[0].contains("\"ok\":false"),
        "{}",
        transcripts[0]
    );
}

/// The sweep acceptance differential: a seeded sweep-heavy request log
/// replayed at 1 and 4 executors must yield byte-identical `sweep`
/// summary lines and identical streamed point-line *sets* once stably
/// sorted by point index (the protocol permits completion-order
/// streaming; each line carries its `point` for exactly this
/// normalization).
#[test]
fn sweep_responses_are_deterministic_across_executor_counts() {
    fn point_index(line: &str) -> u64 {
        let at = line.find("\"point\":").expect("point line") + 8;
        line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    }
    let mix = Mix {
        scenario: "e02-link-budget".to_string(),
        seed_pool: 4,
        trials: 50,
        points: 6,
        run_percent: 30,
        sweep_percent: 40,
        sweep_points: 5,
        x_range: (2.0, 12.0),
    };
    let requests = generate(&mix, 40, 0xA11CE);
    assert!(requests.iter().any(|r| r.sweep), "mix must contain sweeps");
    // (summary lines, per-sweep point lines sorted by index) per count.
    let mut replays: Vec<(Vec<String>, Vec<Vec<String>>)> = Vec::new();
    for workers in [1usize, 4] {
        let cache = temp_dir(&format!("sweep-diff-{workers}"));
        let server = Server::builder(mmtag_bench::scenarios::registry())
            .tcp("127.0.0.1:0")
            .cache(mmtag_sim::cache::RunCache::at(&cache))
            .config(EngineConfig {
                executors: workers,
                job_threads: workers,
                queue_capacity: 32,
                memory_capacity: 32,
            })
            .start()
            .unwrap();
        let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
        let mut summaries = Vec::new();
        let mut point_sets = Vec::new();
        let mut resp = String::new();
        for r in &requests {
            if r.sweep {
                client.sweep_into(&r.line, &mut resp).unwrap();
                let mut lines: Vec<String> = resp.lines().map(str::to_string).collect();
                summaries.push(lines.pop().expect("summary line"));
                lines.sort_by_key(|l| point_index(l));
                point_sets.push(lines);
            } else {
                client.roundtrip_into(&r.line, &mut resp).unwrap();
                assert!(resp.contains("\"ok\":true"), "{resp}");
            }
        }
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&cache);
        replays.push((summaries, point_sets));
    }
    assert_eq!(
        replays[0].0, replays[1].0,
        "sweep summary lines diverged between 1 and 4 executors"
    );
    assert_eq!(
        replays[0].1, replays[1].1,
        "sorted sweep point-line sets diverged between 1 and 4 executors"
    );
    for summary in &replays[0].0 {
        assert!(summary.contains("\"ok\":true"), "{summary}");
        assert!(summary.contains("\"failed\":0"), "{summary}");
    }
}

/// A scenario that sleeps so tests can hold the executor busy, and
/// counts its executions so dedup is observable.
struct Slow {
    spec: ScenarioSpec,
    hold: Duration,
    executions: Arc<AtomicUsize>,
}

impl Scenario for Slow {
    fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }
    fn run(&self, ctx: &RunContext) -> Vec<Table> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.hold);
        let mut t = Table::new("slow", &["x", "y"]);
        for x in ctx.spec.values("x") {
            t.push_row(&[x, x + 1.0]);
        }
        vec![t]
    }
    fn with_spec(&self, spec: ScenarioSpec) -> Box<dyn Scenario> {
        Box::new(Slow {
            spec,
            hold: self.hold,
            executions: Arc::clone(&self.executions),
        })
    }
}

fn slow_registry(hold: Duration) -> (Registry, Arc<AtomicUsize>) {
    let executions = Arc::new(AtomicUsize::new(0));
    let spec = ScenarioSpec::paper_link("t95-slow", "serve integration scenario")
        .with_axis("x", AxisKind::Values(vec![0.0, 1.0, 2.0]));
    let mut registry = Registry::new();
    registry.register(Box::new(Slow {
        spec,
        hold,
        executions: Arc::clone(&executions),
    }));
    (registry, executions)
}

/// One executor, a one-slot queue: with the executor held busy and the
/// queue full, the third distinct job must be refused with
/// `queue_full` — bounded admission, not unbounded buffering.
#[test]
fn bounded_admission_rejects_with_queue_full() {
    let (registry, _) = slow_registry(Duration::from_millis(300));
    let engine = Arc::new(Engine::new(
        Arc::new(registry),
        None,
        EngineConfig {
            executors: 1,
            job_threads: 1,
            queue_capacity: 1,
            memory_capacity: 8,
        },
    ));
    // The engine's executor pool is normally spawned by Server::start;
    // run one manually for this in-process test.
    let exec_engine = Arc::clone(&engine);
    let executor = std::thread::spawn(move || exec_engine.run_executor());
    let responses: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for seed in 0..3u64 {
            let engine = Arc::clone(&engine);
            handles.push(scope.spawn(move || {
                let mut out = String::new();
                let line = format!(
                    "{{\"id\":{seed},\"op\":\"run\",\"scenario\":\"t95-slow\",\"seed\":{seed}}}"
                );
                engine.handle_line(&line, &mut out);
                out
            }));
            // Stagger so the fill order is deterministic: seed 0 runs,
            // seed 1 queues, seed 2 finds the queue full.
            std::thread::sleep(Duration::from_millis(60));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
    assert!(responses[1].contains("\"ok\":true"), "{}", responses[1]);
    assert!(
        responses[2].contains("\"error\":\"queue_full\""),
        "{}",
        responses[2]
    );
    assert_eq!(engine.stats().rejected, 1);
    engine.close();
    executor.join().unwrap();
}

/// Four concurrent identical requests must cost exactly one execution:
/// the leader simulates, the other three join its flight.
#[test]
fn single_flight_deduplicates_identical_inflight_requests() {
    let (registry, executions) = slow_registry(Duration::from_millis(250));
    let engine = Arc::new(Engine::new(
        Arc::new(registry),
        None,
        EngineConfig {
            executors: 1,
            job_threads: 1,
            queue_capacity: 8,
            memory_capacity: 8,
        },
    ));
    let exec_engine = Arc::clone(&engine);
    let executor = std::thread::spawn(move || exec_engine.run_executor());
    let line = r#"{"id":1,"op":"run","scenario":"t95-slow","seed":9}"#;
    let responses: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(scope.spawn(move || {
                let mut out = String::new();
                engine.handle_line(line, &mut out);
                out
            }));
            if i == 0 {
                // Let the leader enqueue before the joiners arrive.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(executions.load(Ordering::SeqCst), 1, "dedup failed");
    assert_eq!(engine.stats().dedup_joined, 3);
    let first = &responses[0];
    assert!(first.contains("\"ok\":true"), "{first}");
    for r in &responses {
        assert_eq!(r, first, "joiners must see the leader's exact bytes");
    }
    engine.close();
    executor.join().unwrap();
}

/// An idle connection (accepted, never sends) must not wedge the
/// daemon: jobs submitted on another connection still execute, and
/// shutdown still completes while the idle connection is parked in a
/// blocking read.
#[test]
fn idle_connections_do_not_block_jobs_or_shutdown() {
    let (registry, _) = slow_registry(Duration::from_millis(5));
    let server = Server::builder(registry)
        .tcp("127.0.0.1:0")
        .config(EngineConfig {
            executors: 1,
            job_threads: 1,
            queue_capacity: 4,
            memory_capacity: 4,
        })
        .start()
        .unwrap();
    let addr = server.tcp_addr().unwrap();
    let _idle = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(30)); // let the acceptor register it
    let mut client = Client::connect_tcp(addr).unwrap();
    let run = client
        .roundtrip(r#"{"id":1,"op":"run","scenario":"t95-slow"}"#)
        .unwrap();
    assert!(run.contains("\"ok\":true"), "{run}");
    let bye = client.roundtrip(r#"{"id":2,"op":"shutdown"}"#).unwrap();
    assert!(bye.contains("\"op\":\"shutdown\""));
    server.join(); // must not hang on the idle connection
}

/// End-to-end over a Unix socket: run, query with provenance, status,
/// shutdown — the README quickstart session, asserted.
#[cfg(unix)]
#[test]
fn unix_socket_session_round_trips() {
    let sock = std::env::temp_dir().join(format!("mmtag-serve-test-{}.sock", std::process::id()));
    let cache = temp_dir("unix");
    let (registry, _) = slow_registry(Duration::from_millis(1));
    let server = Server::builder(registry)
        .unix(&sock)
        .cache(mmtag_sim::cache::RunCache::at(&cache))
        .config(EngineConfig::default())
        .start()
        .unwrap();
    let mut client = Client::connect_unix(&sock).unwrap();
    let run = client
        .roundtrip(r#"{"id":1,"op":"run","scenario":"t95-slow"}"#)
        .unwrap();
    assert!(run.contains("\"tables\":[{\"title\":\"slow\""), "{run}");
    let query = client
        .roundtrip(r#"{"id":2,"op":"query","scenario":"t95-slow","x":0.5}"#)
        .unwrap();
    assert!(query.contains("\"values\":[1.5]"), "{query}");
    assert!(query.contains("\"provenance\":{"), "{query}");
    let status = client.roundtrip(r#"{"id":3,"op":"status"}"#).unwrap();
    assert!(status.contains("\"cache_entries\":1"), "{status}");
    let bye = client.roundtrip(r#"{"id":4,"op":"shutdown"}"#).unwrap();
    assert!(bye.contains("\"ok\":true"));
    server.join();
    assert!(!sock.exists(), "socket file must be removed on shutdown");
    let _ = std::fs::remove_dir_all(&cache);
}
