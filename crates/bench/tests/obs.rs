//! Observability guarantees at the registry level: recording is a pure
//! side channel (enabling it never perturbs results), counters and
//! histograms are thread-count invariant, and both serializers emit
//! valid JSON.
//!
//! The obs level and collector are process-global, so every test here
//! takes [`lock`] first; integration tests in other files never touch
//! the level, which makes this file the only place that needs it.

use mmtag_bench::scenarios::registry;
use mmtag_bench::timing::validate_json;
use mmtag_rf::obs;
use mmtag_sim::scenario::Runner;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

/// Serializes the tests in this file and starts each from a clean slate
/// (level off, collector empty).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_level(obs::Level::Off);
    obs::reset();
    g
}

#[test]
fn tracing_never_changes_tables_and_counters_are_thread_invariant() {
    let _g = lock();
    let reg = registry();
    let s = reg.get("e05-ber").expect("e05-ber is registered");

    // Baseline: obs fully off, serial — the seed's behavior.
    let baseline = Runner::with_threads(1).run_minimized(s, 3, 200).render();

    let mut traced_counters = Vec::new();
    let mut traced_histograms = Vec::new();
    for threads in [1usize, 2, 8] {
        for level in [obs::Level::Off, obs::Level::Trace] {
            obs::reset();
            obs::set_level(level);
            let rec = Runner::with_threads(threads).run_minimized(s, 3, 200);
            obs::set_level(obs::Level::Off);
            assert_eq!(
                rec.render(),
                baseline,
                "threads={threads} level={level:?}: observability perturbed the tables"
            );
            if level == obs::Level::Trace {
                let m = &rec.manifest.metrics;
                assert!(!m.is_empty(), "traced run recorded no metrics");
                assert!(m.counter("phy.ber.bits") > 0, "BER kernel counted no bits");
                traced_counters.push(m.counters.clone());
                traced_histograms.push(m.histograms.clone());
            }
        }
    }
    obs::reset();

    // Integer aggregates must not depend on the worker budget.
    assert_eq!(traced_counters[0], traced_counters[1]);
    assert_eq!(traced_counters[0], traced_counters[2]);
    assert_eq!(traced_histograms[0], traced_histograms[1]);
    assert_eq!(traced_histograms[0], traced_histograms[2]);
}

#[test]
fn trace_and_metrics_serializers_emit_valid_json() {
    let _g = lock();
    let reg = registry();
    let s = reg.get("e05-ber").expect("e05-ber is registered");

    obs::set_level(obs::Level::Trace);
    let rec = Runner::with_threads(4).run_minimized(s, 3, 200);
    obs::set_level(obs::Level::Off);
    let report = obs::drain();

    let chrome = report.to_chrome_json();
    validate_json(&chrome).expect("chrome trace JSON must parse");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("runner.trials"));

    validate_json(&report.metrics_json()).expect("metrics JSON must parse");
    assert!(report.counter("phy.ber.bits") > 0);

    // The manifest's metrics block rides inside the record JSON.
    let json = rec.to_json();
    validate_json(&json).expect("record JSON with metrics must parse");
    assert!(json.contains("\"metrics\""));
    assert!(json.contains("\"phy.ber.bits\""));
}

#[test]
fn per_unit_events_merge_in_unit_order() {
    let _g = lock();
    let reg = registry();
    let s = reg.get("e05-ber").expect("e05-ber is registered");

    // The event log (names in sequence, timings ignored) must be the
    // same serial and parallel: deltas are captured per work unit and
    // appended in unit order at merge.
    let names = |threads: usize| -> Vec<String> {
        obs::reset();
        obs::set_level(obs::Level::Trace);
        let _ = Runner::with_threads(threads).run_minimized(s, 3, 200);
        obs::set_level(obs::Level::Off);
        obs::drain()
            .events
            .iter()
            .map(|e| match e {
                obs::Event::Count { name, .. } => format!("count:{name}"),
                obs::Event::Observe { name, .. } => format!("observe:{name}"),
                obs::Event::Span { name, .. } => format!("span:{name}"),
                obs::Event::Warn { message } => format!("warn:{message}"),
            })
            .collect()
    };
    assert_eq!(names(1), names(8), "event order depends on thread count");
}
