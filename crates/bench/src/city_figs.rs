//! E27, E28: city-scale experiments — the sharded event engine at density,
//! under mobility and blockage.
//!
//! These are the §9 "network of mmTags" endgame runs: a reader grid
//! inventorying 10³–10⁵ mobile, energy-harvesting tags through
//! [`mmtag_mac::city::CityEngine`]. Both scenarios run the *sharded
//! calendar-queue engine* at the context's thread budget — the registry
//! smoke, the RunCache round-trip and the determinism tests therefore
//! exercise the exact production path (and its bit-identical-anywhere
//! contract) rather than a scaled-down stand-in.

use crate::scenarios::FigScenario;
use mmtag_mac::city::{CityConfig, CityEngine};
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E27** spec: tag-density sweep (10³ → 10⁵ tags) on the dense city.
/// The axis is `Values`, so even the minimized CI smoke keeps the 10⁵
/// point — the registry smoke genuinely runs a hundred thousand tags.
pub(crate) fn e27_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e27-city-density",
        "E27 — city-scale inventory vs tag density on the sharded event engine",
    )
    .with_axis("tags", AxisKind::Values(vec![1e3, 1e4, 1e5]))
    .with_seed(seed)
}

pub(crate) fn e27_body(ctx: &RunContext) -> Vec<Table> {
    let mut t = Table::new(
        "E27 — city-scale inventory vs tag density on the sharded event engine",
        &[
            "tags",
            "tags_read",
            "read_frac",
            "slots",
            "events",
            "slot_eff",
            "elapsed_ms",
        ],
    );
    for (i, v) in ctx.spec.values("tags").iter().enumerate() {
        let cfg = CityConfig::dense(*v as usize, 12);
        let mut eng = CityEngine::new(cfg, ctx.tree.subtree_indexed("density", i as u64));
        let s = eng.run_rounds(ctx.threads);
        t.push_row(&[
            *v,
            s.tags_read as f64,
            s.tags_read as f64 / cfg.tags as f64,
            s.slots as f64,
            s.events as f64,
            if s.slots > 0 {
                s.tags_read as f64 / s.slots as f64
            } else {
                0.0
            },
            s.elapsed.as_secs_f64() * 1e3,
        ]);
    }
    vec![t]
}

/// **E27** — inventory throughput vs tag density: reads, slot efficiency
/// and simulated makespan for 10³/10⁴/10⁵ tags on the 4 × 4 reader grid.
/// Columns: `tags`, `tags_read`, `read_frac`, `slots`, `events`,
/// `slot_eff`, `elapsed_ms`.
pub fn fig_city_density(seed: u64) -> Table {
    FigScenario::new(e27_spec(seed), e27_body).table()
}

/// **E28** spec: mobility × blockage grid at a fixed 20 k-tag population.
pub(crate) fn e28_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e28-city-mobility",
        "E28 — mobility and blockage traces over the city inventory",
    )
    .with_axis("speed_mps", AxisKind::Values(vec![0.0, 1.5, 6.0]))
    .with_axis("blockers", AxisKind::Values(vec![0.0, 12.0, 48.0]))
    .with_seed(seed)
}

pub(crate) fn e28_body(ctx: &RunContext) -> Vec<Table> {
    let mut t = Table::new(
        "E28 — mobility and blockage traces over the city inventory",
        &[
            "speed_mps",
            "blockers",
            "tags_read",
            "read_frac",
            "collision_frac",
            "empty_frac",
        ],
    );
    let mut point = 0u64;
    for speed in ctx.spec.values("speed_mps") {
        for blockers in ctx.spec.values("blockers") {
            let mut cfg = CityConfig::dense(20_000, 8);
            cfg.speed_mps = speed;
            cfg.blockers = blockers as usize;
            let mut eng = CityEngine::new(cfg, ctx.tree.subtree_indexed("trace", point));
            point += 1;
            let s = eng.run_rounds(ctx.threads);
            let slots = (s.slots as f64).max(1.0);
            t.push_row(&[
                speed,
                blockers,
                s.tags_read as f64,
                s.tags_read as f64 / cfg.tags as f64,
                s.collisions as f64 / slots,
                s.empties as f64 / slots,
            ]);
        }
    }
    vec![t]
}

/// **E28** — mobility/blockage traces: how tag speed and wall density
/// reshape the inventory (mobility churns reader assignment; blockage
/// gates line of sight). Columns: `speed_mps`, `blockers`, `tags_read`,
/// `read_frac`, `collision_frac`, `empty_frac`.
pub fn fig_city_mobility(seed: u64) -> Table {
    FigScenario::new(e28_spec(seed), e28_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmtag_sim::scenario::Runner;

    fn quick(spec: ScenarioSpec, body: crate::scenarios::FigBody) -> Table {
        // Clamp every axis to 2 points so unit tests stay sub-second;
        // the full-size points run in the registry smoke and benches.
        Runner::new()
            .run_minimized(&FigScenario::new(spec, body), 2, 50)
            .into_table()
    }

    #[test]
    fn density_sweep_reads_more_tags_at_higher_density() {
        let t = quick(e27_spec(7), e27_body);
        assert_eq!(t.len(), 2);
        let read = t.column(1);
        assert!(read[1] > read[0], "10× the tags must yield more reads");
        for row in 0..t.len() {
            assert!(t.cell(row, 2) > 0.0, "every density reads something");
            assert!(t.cell(row, 6) > 0.0, "simulated time must pass");
        }
    }

    #[test]
    fn mobility_grid_covers_every_speed_blocker_pair() {
        let t = quick(e28_spec(7), e28_body);
        assert_eq!(t.len(), 4); // 2 speeds × 2 blocker counts
        for row in 0..t.len() {
            assert!(t.cell(row, 3) > 0.0, "row {row}: some tags read");
            let frac = t.cell(row, 4) + t.cell(row, 5);
            assert!(frac <= 1.0, "row {row}: fractions are fractions");
        }
    }
}
