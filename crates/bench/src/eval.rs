//! E1 and E2: the paper's own evaluation figures (Fig. 6 and Fig. 7).
//!
//! Each experiment is a `(spec, body)` pair: the spec declares the sweep
//! axes and hardware configs, the body interprets them through
//! `mmtag::scenario`'s builders. The public `fig*` functions are thin
//! wrappers that run the pair through the [`Runner`] pipeline
//! (`crate::scenarios` registers the same pairs in the registry).

use crate::scenarios::FigScenario;
use mmtag::prelude::*;
use mmtag::scenario::{face_to_face, LinkSetup};
use mmtag_antenna::sparams::{ElementPort, SwitchState};
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// Default sample count of the E1 frequency sweep (the figure binary's
/// resolution).
pub const E1_POINTS: usize = 201;

/// **E1 / Fig. 6** spec: S11 over 23.5–24.5 GHz at `points` samples.
pub(crate) fn e1_spec(points: usize) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e01-s11",
        "Fig. 6 — S11 of a tag antenna element (switch off vs on)",
    )
    .with_axis(
        "freq_ghz",
        AxisKind::Linspace {
            start: 23.5,
            stop: 24.5,
            points,
        },
    )
}

pub(crate) fn e1_body(ctx: &RunContext) -> Vec<Table> {
    let elem = ElementPort::mmtag_default();
    let mut t = Table::new(
        "Fig. 6 — S11 of a tag antenna element (switch off vs on)",
        &["freq_ghz", "s11_off_db", "s11_on_db"],
    );
    for f in ctx.spec.values("freq_ghz") {
        let freq = Frequency::from_ghz(f);
        t.push_row(&[
            f,
            elem.s11_db(freq, SwitchState::Off),
            elem.s11_db(freq, SwitchState::On),
        ]);
    }
    vec![t]
}

/// **E1 / Fig. 6** — S11 of one tag element over 23.5–24.5 GHz in both
/// switch states. Columns: `freq_ghz`, `s11_off_db`, `s11_on_db`.
///
/// Paper's observations to reproduce: "When the switch is off, S11 is
/// −15 dB at the 24 GHz carrier frequency… when the switch turns on…
/// S11 is as high as −5 dB."
pub fn fig6_s11(points: usize) -> Table {
    FigScenario::new(e1_spec(points), e1_body).table()
}

/// **E2 / Fig. 7** spec: the 2–12 ft range sweep over the paper's default
/// hardware.
pub(crate) fn e2_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e02-link-budget",
        "Fig. 7 — tag signal power vs range, noise floors, achievable rate",
    )
    .with_axis(
        "range_ft",
        AxisKind::Linspace {
            start: 2.0,
            stop: 12.0,
            points: 21,
        },
    )
}

pub(crate) fn e2_body(ctx: &RunContext) -> Vec<Table> {
    let setup = LinkSetup::from_spec(ctx.spec);

    let floors = [
        setup.reader.noise().floor(Bandwidth::from_ghz(2.0)).dbm(),
        setup.reader.noise().floor(Bandwidth::from_mhz(200.0)).dbm(),
        setup.reader.noise().floor(Bandwidth::from_mhz(20.0)).dbm(),
    ];
    let mut t = Table::new(
        "Fig. 7 — tag signal power vs range, noise floors, achievable rate",
        &[
            "range_ft",
            "tag_signal_dbm",
            "floor_2ghz_dbm",
            "floor_200mhz_dbm",
            "floor_20mhz_dbm",
            "rate_mbps",
        ],
    );
    for feet in ctx.spec.values("range_ft") {
        let (rp, tp) = face_to_face(feet);
        let report = setup.evaluate(rp, tp);
        t.push_row(&[
            feet,
            report.power.map(|p| p.dbm()).unwrap_or(f64::NEG_INFINITY),
            floors[0],
            floors[1],
            floors[2],
            report.rate.mbps(),
        ]);
    }
    vec![t]
}

/// **E2 / Fig. 7** — tag signal power at the reader vs range, the three
/// noise floors, and the achievable rate. Columns: `range_ft`,
/// `tag_signal_dbm`, `floor_2ghz_dbm`, `floor_200mhz_dbm`,
/// `floor_20mhz_dbm`, `rate_mbps`.
///
/// Anchors: 1 Gbps at 4 ft, 10 Mbps at 10 ft; floors ≈ −76/−86/−96 dBm.
pub fn fig7_link_budget() -> Table {
    FigScenario::new(e2_spec(), e2_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reproduces_paper_anchors() {
        let t = fig6_s11(201);
        assert_eq!(t.len(), 201);
        let center = t.find_row(0, 24.0, 1e-9).expect("24 GHz sampled");
        let off = t.cell(center, 1);
        let on = t.cell(center, 2);
        // Paper: −15 dB off, −5 dB on at the carrier.
        assert!((-16.5..=-13.5).contains(&off), "S11(off) = {off}");
        assert!((-7.0..=-3.5).contains(&on), "S11(on) = {on}");
        // Shape: off-state dips at center, rises ≥ 5 dB at both edges.
        assert!(t.cell(0, 1) > off + 5.0);
        assert!(t.cell(200, 1) > off + 5.0);
        // On-state is flat-ish (no resonance left).
        let on_col = t.column(2);
        let (min, max) = on_col
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        assert!(max - min < 3.0, "on-state ripple {}", max - min);
    }

    #[test]
    fn fig7_reproduces_paper_anchors() {
        let t = fig7_link_budget();
        let at = |feet: f64| {
            let row = t.find_row(0, feet, 1e-6).expect("range sampled");
            (t.cell(row, 1), t.cell(row, 5))
        };
        let (p4, r4) = at(4.0);
        let (p10, r10) = at(10.0);
        assert!(r4 >= 1000.0, "rate at 4 ft = {r4} Mbps");
        assert!(r10 >= 10.0, "rate at 10 ft = {r10} Mbps");
        // Fig. 7's y-axis: signal between −40 and −110 dBm over the sweep.
        assert!((-70.0..=-50.0).contains(&p4), "P(4ft) = {p4}");
        assert!((-90.0..=-75.0).contains(&p10), "P(10ft) = {p10}");
        // Floors match the paper's kTB+NF arithmetic.
        assert!((t.cell(0, 2) + 75.8).abs() < 0.3);
        assert!((t.cell(0, 3) + 85.8).abs() < 0.3);
        assert!((t.cell(0, 4) + 95.8).abs() < 0.3);
        // d⁻⁴ slope: from 3 ft to 6 ft the signal drops ~12 dB.
        let (p3, _) = at(3.0);
        let (p6, _) = at(6.0);
        assert!((p3 - p6 - 12.04).abs() < 0.1, "slope {}", p3 - p6);
        // Signal stays above the 20 MHz floor through 12 ft (as plotted).
        let (p12, r12) = at(12.0);
        assert!(p12 > t.cell(0, 4));
        assert!(r12 >= 10.0);
    }
}
