//! E3 and E6: antenna-level figures — retrodirectivity and array scaling.

use crate::scenarios::FigScenario;
use mmtag_antenna::element::PatchElement;
use mmtag_antenna::{LinearArray, ReflectorWiring, VanAttaArray};
use mmtag_rf::units::{Angle, Db};
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E3** spec: the ±75° incidence sweep at 151 samples.
pub(crate) fn e3_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e03-retro",
        "E3 — monostatic gain vs incidence angle (6 elements)",
    )
    .with_axis(
        "incidence_deg",
        AxisKind::Linspace {
            start: -75.0,
            stop: 75.0,
            points: 151,
        },
    )
}

pub(crate) fn e3_body(ctx: &RunContext) -> Vec<Table> {
    let elements = ctx.spec.tag.elements;
    let build = |wiring| {
        VanAttaArray::new(
            LinearArray::half_wavelength(elements),
            PatchElement::mmtag_default(),
            wiring,
        )
    };
    let va = build(ReflectorWiring::VanAtta);
    let fb = build(ReflectorWiring::FixedBeam);
    let mirror = build(ReflectorWiring::Specular);

    let mut t = Table::new(
        "E3 — monostatic gain vs incidence angle (6 elements)",
        &["incidence_deg", "van_atta_db", "fixed_beam_db", "mirror_db"],
    );
    for deg in ctx.spec.values("incidence_deg") {
        let a = Angle::from_degrees(deg);
        t.push_row(&[
            deg,
            Db::from_linear(va.monostatic_gain(a)).db(),
            Db::from_linear(fb.monostatic_gain(a)).db(),
            Db::from_linear(mirror.monostatic_gain(a)).db(),
        ]);
    }
    vec![t]
}

/// **E3** — monostatic (back-toward-reader) gain vs incidence angle for the
/// three wirings: mmTag's Van Atta, the fixed-beam tag of \[18\], and a plain
/// specular mirror. Columns: `incidence_deg`, `van_atta_db`, `fixed_beam_db`,
/// `mirror_db`.
///
/// The paper's §5.2 claim to reproduce: the Van Atta tag "reflects the
/// signal back to the direction of arrival regardless of incidence angle",
/// while the fixed-beam tag "only works when the tag is exactly in front of
/// the reader".
pub fn fig_retro() -> Table {
    FigScenario::new(e3_spec(), e3_body).table()
}

/// **E6** spec: the element-count sweep (the paper's 6 plus scaling points).
pub(crate) fn e6_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e06-beamwidth",
        "E6 — tag beamwidth and retro gain vs element count",
    )
    .with_axis(
        "elements",
        AxisKind::Values(vec![2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0]),
    )
}

pub(crate) fn e6_body(ctx: &RunContext) -> Vec<Table> {
    let gain_of = |n: usize| {
        let va = VanAttaArray::new(
            LinearArray::half_wavelength(n),
            PatchElement::mmtag_default(),
            ReflectorWiring::VanAtta,
        );
        Db::from_linear(va.monostatic_gain(Angle::ZERO)).db()
    };
    let g6 = gain_of(6);
    let mut t = Table::new(
        "E6 — tag beamwidth and retro gain vs element count",
        &[
            "elements",
            "beamwidth_deg",
            "retro_gain_db",
            "gain_vs_n6_db",
        ],
    );
    for v in ctx.spec.values("elements") {
        let n = v as usize;
        let arr = LinearArray::half_wavelength(n);
        let g = gain_of(n);
        t.push_row(&[n as f64, arr.half_power_beamwidth_deg(), g, g - g6]);
    }
    vec![t]
}

/// **E6** — beamwidth, retro gain and implied link metrics vs element
/// count. Columns: `elements`, `beamwidth_deg`, `retro_gain_db`,
/// `gain_vs_n6_db`.
///
/// §7: 6 elements ⇒ ~20° beamwidth; §8: "range and data-rate … can be
/// further increased by using more antenna elements."
pub fn fig_beamwidth() -> Table {
    FigScenario::new(e6_spec(), e6_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retro_curve_shapes() {
        let t = fig_retro();
        let broadside = t.find_row(0, 0.0, 0.6).unwrap();
        let at45 = t.find_row(0, 45.0, 0.6).unwrap();

        // At broadside all three coincide (within a dB).
        let (va0, fb0, mr0) = (
            t.cell(broadside, 1),
            t.cell(broadside, 2),
            t.cell(broadside, 3),
        );
        assert!((va0 - fb0).abs() < 1.0 && (va0 - mr0).abs() < 1.0);

        // At 45°: Van Atta keeps most of its gain (element rolloff only);
        // fixed beam and mirror collapse by ≥ 15 dB relative to it.
        let (va45, fb45, mr45) = (t.cell(at45, 1), t.cell(at45, 2), t.cell(at45, 3));
        assert!(va0 - va45 < 10.0, "VA rolloff {}", va0 - va45);
        assert!(va45 - fb45 > 15.0, "VA {va45} vs fixed {fb45}");
        assert!(va45 - mr45 > 15.0, "VA {va45} vs mirror {mr45}");
    }

    #[test]
    fn van_atta_is_flat_over_pm60() {
        let t = fig_retro();
        // Within ±60°, the Van Atta column never falls more than the
        // element pattern's cos⁴ factor (≈ 12 dB at 60°) below broadside.
        let va0 = t.cell(t.find_row(0, 0.0, 0.6).unwrap(), 1);
        for row in 0..t.len() {
            let deg: f64 = t.cell(row, 0);
            if deg.abs() <= 60.0 {
                assert!(
                    va0 - t.cell(row, 1) <= 13.0,
                    "VA drop {} dB at {deg}°",
                    va0 - t.cell(row, 1)
                );
            }
        }
    }

    #[test]
    fn beamwidth_table_matches_paper_and_scaling() {
        let t = fig_beamwidth();
        let n6 = t.find_row(0, 6.0, 1e-9).unwrap();
        // §7: "20 degree beam width" (array factor ~17°, rounded up).
        let bw6 = t.cell(n6, 1);
        assert!((15.0..21.0).contains(&bw6), "N=6 beamwidth {bw6}");
        // Doubling N: beamwidth halves, retro gain +6 dB.
        let n12 = t.find_row(0, 12.0, 1e-9).unwrap();
        assert!((t.cell(n6, 1) / t.cell(n12, 1) - 2.0).abs() < 0.25);
        assert!((t.cell(n12, 3) - 6.02).abs() < 0.1);
        // Monotone: beamwidth strictly decreasing, gain strictly increasing.
        let bw = t.column(1);
        let g = t.column(2);
        assert!(bw.windows(2).all(|w| w[1] < w[0]));
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }
}
