//! E4, E9, E10, E11: system-level tables — comparison, self-interference,
//! power and the 60 GHz retune.

use crate::scenarios::FigScenario;
use mmtag::baseline::comparison_rows;
use mmtag::energy::{
    advantage_over_active_radio, advantage_over_phased_array, EnergyBudget, Harvester,
};
use mmtag::prelude::*;
use mmtag::scenario::{build_reader, build_scene, build_tag, face_to_face};
use mmtag_antenna::PhasedArray;
use mmtag_channel::atmosphere::path_absorption;
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E4** spec: no axes — the comparison table is a fixed set of systems.
pub(crate) fn e4_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e04-comparison",
        "E4 — backscatter systems compared (paper §1/§3)",
    )
}

pub(crate) fn e4_body(ctx: &RunContext) -> Vec<Table> {
    let rows = comparison_rows(&build_reader(&ctx.spec.reader), &build_tag(&ctx.spec.tag));
    let mut t = Table::new(
        "E4 — backscatter systems compared (paper §1/§3)",
        &["rate_4ft_mbps", "rate_10ft_mbps", "mobility"],
    );
    for r in rows {
        t.push_labeled_row(
            &r.name,
            &[
                r.rate_short.mbps(),
                r.rate_10ft.mbps(),
                r.supports_mobility as u8 as f64,
            ],
        );
    }
    vec![t]
}

/// **E4** — the §1/§3 comparison: every published backscatter system's
/// rate at 4 ft and 10 ft, with mmTag's numbers computed live from the
/// link model. Columns: `rate_4ft_mbps`, `rate_10ft_mbps`, `mobility`
/// (1 = supports arbitrary orientation).
pub fn table_comparison() -> Table {
    FigScenario::new(e4_spec(), e4_body).table()
}

/// **E9** spec: the 2–12 ft range sweep at 6 samples.
pub(crate) fn e9_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e09-selfint",
        "E9 — self-interference: required isolation and its effect on rate",
    )
    .with_axis(
        "range_ft",
        AxisKind::Linspace {
            start: 2.0,
            stop: 12.0,
            points: 6,
        },
    )
}

pub(crate) fn e9_body(ctx: &RunContext) -> Vec<Table> {
    let tag = build_tag(&ctx.spec.tag);
    let scene = build_scene(&ctx.spec.scene);

    let passive = build_reader(&ctx.spec.reader); // 40 dB isolation
                                                  // 110 dB total: enough to sit below even the 20 MHz rung's thermal
                                                  // floor (13 dBm TX − 108.8 dB needed).
    let cancelled = build_reader(&ReaderSpec {
        cancellation_db: 70.0,
        ..ctx.spec.reader
    });

    // Rate with SI: recompute the ladder decision against the effective
    // (noise + residual SI) floor.
    let rate_with = |reader: &Reader, power: Dbm| {
        reader
            .adaptation()
            .rungs()
            .iter()
            .find(|rung| {
                let floor = reader.effective_floor(rung.bandwidth);
                (power - floor).db() >= 7.0
            })
            .map(|r| r.rate.mbps())
            .unwrap_or(0.0)
    };

    let mut t = Table::new(
        "E9 — self-interference: required isolation and its effect on rate",
        &[
            "range_ft",
            "tag_signal_dbm",
            "isolation_for_thermal_db",
            "passive_only_db",
            "rate_with_passive_mbps",
            "rate_with_110db_mbps",
        ],
    );
    for feet in ctx.spec.values("range_ft") {
        let (rp, tp) = face_to_face(feet);
        let report = evaluate_link(&passive, &tag, &scene, rp, tp);
        let p = report.power.expect("free space is never blocked");
        t.push_row(&[
            feet,
            p.dbm(),
            passive.required_isolation(Bandwidth::from_ghz(2.0)).db(),
            passive.self_interference().total_isolation().db(),
            rate_with(&passive, p),
            rate_with(&cancelled, p),
        ]);
    }
    vec![t]
}

/// **E9** — self-interference: the TX→RX isolation required for the tag
/// signal to be decodable at each range (SINR ≥ 7 dB on the best rung),
/// versus what passive isolation alone provides. Columns: `range_ft`,
/// `tag_signal_dbm`, `isolation_for_thermal_db`, `passive_only_db`,
/// `rate_with_passive_mbps`, `rate_with_110db_mbps`.
pub fn fig_selfint() -> Table {
    FigScenario::new(e9_spec(), e9_body).table()
}

/// **E10** spec: no axes — a fixed set of rates and power baselines.
pub(crate) fn e10_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e10-power",
        "E10 — power budget: mmTag vs active radios (batteryless argument)",
    )
}

pub(crate) fn e10_body(ctx: &RunContext) -> Vec<Table> {
    let tag = build_tag(&ctx.spec.tag);
    let mut t = Table::new(
        "E10 — power budget: mmTag vs active radios (batteryless argument)",
        &["power_uw", "advantage_vs_active", "solar10_duty_pct"],
    );
    let solar = Harvester::IndoorSolar { area_cm2: 10.0 };
    for (label, rate) in [
        ("mmTag @ 10 Mbps", DataRate::from_mbps(10.0)),
        ("mmTag @ 100 Mbps", DataRate::from_mbps(100.0)),
        ("mmTag @ 1 Gbps", DataRate::from_gbps(1.0)),
    ] {
        let b = EnergyBudget::for_tag(&tag, rate);
        t.push_labeled_row(
            label,
            &[
                b.active_w() * 1e6,
                advantage_over_active_radio(&b),
                b.sustainable_duty_cycle(solar) * 100.0,
            ],
        );
    }
    // The alternatives, on the same axes (duty cycle: 0 — unharvestable).
    t.push_labeled_row(
        "active mmWave radio",
        &[mmtag::energy::ACTIVE_MMWAVE_RADIO_W * 1e6, 1.0, 0.0],
    );
    let pa = PhasedArray::typical(16);
    let b1g = EnergyBudget::for_tag(&tag, DataRate::from_gbps(1.0));
    t.push_labeled_row(
        "16-el phased array",
        &[
            pa.dc_power_w() * 1e6,
            mmtag::energy::ACTIVE_MMWAVE_RADIO_W / pa.dc_power_w(),
            0.0,
        ],
    );
    let _ = advantage_over_phased_array(&b1g, 16); // exercised in tests
    vec![t]
}

/// **E10** — the power table behind the batteryless claim: mmTag's draw at
/// each rate vs the active alternatives, plus harvesting feasibility.
/// Columns: `power_uw`, `advantage_vs_active`, `solar10_duty_pct`.
pub fn table_power() -> Table {
    FigScenario::new(e10_spec(), e10_body).table()
}

/// **E11** spec: the band sweep over the three mmWave candidates.
pub(crate) fn e11_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link("e11-60ghz", "E11 — retuning mmTag across mmWave bands")
        .with_axis("freq_ghz", AxisKind::Values(vec![24.0, 39.0, 60.0]))
}

pub(crate) fn e11_body(ctx: &RunContext) -> Vec<Table> {
    let scene = build_scene(&ctx.spec.scene);
    let mut t = Table::new(
        "E11 — retuning mmTag across mmWave bands",
        &[
            "freq_ghz",
            "tag_width_mm",
            "o2_loss_12ft_db",
            "rate_2ft_mbps",
            "rate_4ft_mbps",
            "rate_8ft_mbps",
        ],
    );
    for ghz in ctx.spec.values("freq_ghz") {
        let freq = Frequency::from_ghz(ghz);
        let tag = build_tag(&TagSpec {
            band_ghz: ghz,
            ..ctx.spec.tag
        });
        let reader = build_reader(&ReaderSpec::at_band(ghz));
        let rate_at = |feet: f64| {
            let (rp, tp) = face_to_face(feet);
            evaluate_link(&reader, &tag, &scene, rp, tp).rate.mbps()
        };
        let (w, _) = tag.dimensions();
        t.push_row(&[
            ghz,
            w.mm(),
            path_absorption(freq, Distance::from_feet(12.0) * 2.0).db(),
            rate_at(2.0),
            rate_at(4.0),
            rate_at(8.0),
        ]);
    }
    vec![t]
}

/// **E11** — retuning to 60 GHz (§7 footnote 3): tag size, atmospheric
/// absorption over 12 ft, and achievable rate at 2/4/8 ft per band.
/// Columns: `freq_ghz`, `tag_width_mm`, `o2_loss_12ft_db`,
/// `rate_2ft_mbps`, `rate_4ft_mbps`, `rate_8ft_mbps`.
pub fn fig_60ghz() -> Table {
    FigScenario::new(e11_spec(), e11_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_headline() {
        let t = table_comparison();
        assert_eq!(t.len(), 6);
        let mmtag_row = (0..t.len()).find(|&i| t.label(i) == "mmTag").unwrap();
        // 1 Gbps at 4 ft, 10 Mbps at 10 ft — live from the model.
        assert!((t.cell(mmtag_row, 0) - 1000.0).abs() < 1e-6);
        assert!((t.cell(mmtag_row, 1) - 10.0).abs() < 1e-6);
        // Orders of magnitude above HitchHike/BackFi/RFID.
        for i in 0..t.len() {
            let label = t.label(i).to_string();
            if label != "mmTag" && !label.starts_with("Fixed-beam") {
                assert!(t.cell(mmtag_row, 0) >= 100.0 * t.cell(i, 0), "{label}");
            }
        }
    }

    #[test]
    fn selfint_requirements_and_effects() {
        let t = fig_selfint();
        // ~89 dB needed to reach the 2 GHz thermal floor.
        assert!((t.cell(0, 2) - 88.8).abs() < 0.3);
        // With only 40 dB passive isolation the link is dead at range
        // (residual −27 dBm swamps every rung's floor).
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 4), 0.0, "passive-only must fail");
        }
        // With 110 dB total isolation the paper's anchors return.
        let r4 = t.find_row(0, 4.0, 1e-6).unwrap();
        assert!((t.cell(r4, 5) - 1000.0).abs() < 1e-6);
        let r10 = t.find_row(0, 10.0, 1e-6).unwrap();
        assert!(t.cell(r10, 5) >= 10.0);
    }

    #[test]
    fn power_table_shows_orders_of_magnitude() {
        let t = table_power();
        let gbps = (0..t.len())
            .find(|&i| t.label(i) == "mmTag @ 1 Gbps")
            .unwrap();
        assert!(t.cell(gbps, 0) < 1000.0, "µW scale");
        assert!(t.cell(gbps, 1) > 1e3, "≥ 1000× under the active radio");
        assert!(t.cell(gbps, 2) > 10.0, "solar duty > 10%");
        let radio = (0..t.len())
            .find(|&i| t.label(i) == "active mmWave radio")
            .unwrap();
        assert!(t.cell(radio, 0) / t.cell(gbps, 0) > 1e3);
    }

    #[test]
    fn sixty_ghz_shrinks_tag_and_range_but_o2_is_negligible() {
        let t = fig_60ghz();
        let r24 = t.find_row(0, 24.0, 1e-9).unwrap();
        let r60 = t.find_row(0, 60.0, 1e-9).unwrap();
        // Tag shrinks by the wavelength ratio.
        assert!(t.cell(r60, 1) < t.cell(r24, 1) / 2.0);
        // O2 absorption over the paper's whole range span: < 0.2 dB even
        // at the 60 GHz peak — absorption is NOT the limiter indoors.
        assert!(t.cell(r60, 2) < 0.2, "O2 loss {}", t.cell(r60, 2));
        // Range is the cost: at 4 ft, 60 GHz falls below 24 GHz's rate.
        assert!(t.cell(r60, 4) < t.cell(r24, 4));
        // But at 2 ft even 60 GHz still links fast.
        assert!(t.cell(r60, 3) >= 100.0);
    }
}
