//! E29–E31: multi-tag rate-region experiments (DESIGN.md §14).
//!
//! The §9 "network of mmTags" question, asked information-theoretically:
//! N backscatter tags share one reader over a
//! [`mmtag_channel::cascade::MultiTagCascade`], each switching an M-state
//! reflection constellation, and every operating point trades primary-link
//! rate against backscatter sum rate through the tags' modulation depth.
//! E29 traces the boundary of that trade (weight sweep), E30 scales the
//! tag count, E31 the constellation order. All three run the
//! [`mmtag_sim::rate_region`] flat (weight × chunk) grid at the context's
//! thread budget, so the registry smoke and RunCache round-trip exercise
//! the exact production path.

use crate::scenarios::FigScenario;
use mmtag_channel::cascade::{HopModel, MultiTagCascade};
use mmtag_phy::constellation::TagConstellation;
use mmtag_sim::experiment::Table;
use mmtag_sim::rate_region::{rate_region_grid_par_with, RateRegionConfig};
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// Direct-link SNR for the canonical scene, dB.
const SNR_DB: f64 = 10.0;
/// Backscatter/primary symbol-duration ratio (RIScatter's symbolRatio).
const SYMBOL_RATIO: f64 = 10.0;
/// Amplitude scatter ratio α of every tag (RIScatter's scatterRatio).
const SCATTER_RATIO: f64 = 0.5;
/// Primary-rate weight of the E30/E31 operating point. Backscatter rates
/// are per *primary symbol* (÷ symbolRatio), so they sit an order of
/// magnitude below the primary rate; a backscatter-leaning weight keeps
/// the selected depth in information mode, where tag count and
/// constellation order actually move the sum rate (E29 shows w ≥ 0.4
/// collapsing to pure beamforming).
const BACKSCATTER_WEIGHT: f64 = 0.1;

/// The canonical E29–E31 scene: N tags on a 2 m ring around the receiver,
/// 10 m from the reader, RIScatter-style path classes — direct γ = 2.6,
/// forward γ = 2.4, backward γ = 2.0, K = 5 everywhere.
fn ring_scene(n_tags: usize) -> MultiTagCascade {
    MultiTagCascade::ring(
        n_tags,
        10.0,
        2.0,
        HopModel::new(2.6, 5.0),
        HopModel::new(2.4, 5.0),
        HopModel::new(2.0, 5.0),
    )
}

/// **E29** spec: primary-rate weight sweep 0 → 1 over the two-tag,
/// 4-state-PSK scene — the rate-region boundary itself.
pub(crate) fn e29_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e29-rate-region",
        "E29 — primary vs backscatter rate-region boundary (2 tags, 4-PSK)",
    )
    .with_axis(
        "weight",
        AxisKind::Linspace {
            start: 0.0,
            stop: 1.0,
            points: 11,
        },
    )
    .with_trials(800)
    .with_seed(seed)
}

pub(crate) fn e29_body(ctx: &RunContext) -> Vec<Table> {
    let cfg = RateRegionConfig {
        cascade: ring_scene(2),
        constellation: TagConstellation::psk(4, SCATTER_RATIO),
        snr_db: SNR_DB,
        symbol_ratio: SYMBOL_RATIO,
    };
    let weights = ctx.spec.values("weight");
    let tree = ctx.tree.subtree("rate-region");
    let points = rate_region_grid_par_with(ctx.threads, &cfg, &weights, ctx.spec.trials, &tree);
    let mut t = Table::new(
        "E29 — primary vs backscatter rate-region boundary (2 tags, 4-PSK)",
        &[
            "weight",
            "depth",
            "primary_rate",
            "backscatter_rate",
            "weighted_sum",
        ],
    );
    for p in points {
        t.push_row(&[
            p.weight,
            p.depth,
            p.primary_rate,
            p.backscatter_rate,
            p.weighted_sum,
        ]);
    }
    vec![t]
}

/// **E29** — the rate-region boundary: selected modulation depth, primary
/// rate (bit/s/Hz) and backscatter sum rate (bit per primary symbol) at
/// each weight. Columns: `weight`, `depth`, `primary_rate`,
/// `backscatter_rate`, `weighted_sum`.
pub fn fig_rate_region(seed: u64) -> Table {
    FigScenario::new(e29_spec(seed), e29_body).table()
}

/// **E30** spec: backscatter-weighted (w = 0.1) sum rate vs number of
/// tags, binary reflection states.
pub(crate) fn e30_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e30-rate-vs-tags",
        "E30 — backscatter-weighted sum rate vs number of coexisting tags (2-PSK)",
    )
    .with_axis("tags", AxisKind::Values(vec![1.0, 2.0, 3.0, 4.0]))
    .with_trials(600)
    .with_seed(seed)
}

pub(crate) fn e30_body(ctx: &RunContext) -> Vec<Table> {
    // One shared subtree across the axis: cascade streams are keyed by tag
    // index, so tag i's fades are bit-identical at every population size
    // and the N sweep varies only what it claims to vary.
    let tree = ctx.tree.subtree("rate-region");
    let mut t = Table::new(
        "E30 — backscatter-weighted sum rate vs number of coexisting tags (2-PSK)",
        &[
            "tags",
            "depth",
            "primary_rate",
            "backscatter_rate",
            "weighted_sum",
        ],
    );
    for v in ctx.spec.values("tags") {
        let cfg = RateRegionConfig {
            cascade: ring_scene(v as usize),
            constellation: TagConstellation::psk(2, SCATTER_RATIO),
            snr_db: SNR_DB,
            symbol_ratio: SYMBOL_RATIO,
        };
        let p = rate_region_grid_par_with(
            ctx.threads,
            &cfg,
            &[BACKSCATTER_WEIGHT],
            ctx.spec.trials,
            &tree,
        )[0];
        t.push_row(&[
            v,
            p.depth,
            p.primary_rate,
            p.backscatter_rate,
            p.weighted_sum,
        ]);
    }
    vec![t]
}

/// **E30** — how the information-mode (w = 0.1) operating point moves as
/// tags are added to the ring: more tags mean more joint-alphabet
/// backscatter sum rate (and more cascade power in the equivalent
/// channel). Columns: `tags`, `depth`,
/// `primary_rate`, `backscatter_rate`, `weighted_sum`.
pub fn fig_rate_vs_tags(seed: u64) -> Table {
    FigScenario::new(e30_spec(seed), e30_body).table()
}

/// **E31** spec: backscatter-weighted (w = 0.1) sum rate vs constellation
/// order, two tags.
pub(crate) fn e31_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e31-rate-vs-states",
        "E31 — backscatter-weighted sum rate vs constellation order (2 tags)",
    )
    .with_axis("states", AxisKind::Values(vec![2.0, 4.0, 8.0]))
    .with_trials(500)
    .with_seed(seed)
}

pub(crate) fn e31_body(ctx: &RunContext) -> Vec<Table> {
    let tree = ctx.tree.subtree("rate-region");
    let mut t = Table::new(
        "E31 — backscatter-weighted sum rate vs constellation order (2 tags)",
        &[
            "states",
            "depth",
            "primary_rate",
            "backscatter_rate",
            "weighted_sum",
        ],
    );
    for v in ctx.spec.values("states") {
        let cfg = RateRegionConfig {
            cascade: ring_scene(2),
            constellation: TagConstellation::psk(v as usize, SCATTER_RATIO),
            snr_db: SNR_DB,
            symbol_ratio: SYMBOL_RATIO,
        };
        let p = rate_region_grid_par_with(
            ctx.threads,
            &cfg,
            &[BACKSCATTER_WEIGHT],
            ctx.spec.trials,
            &tree,
        )[0];
        t.push_row(&[
            v,
            p.depth,
            p.primary_rate,
            p.backscatter_rate,
            p.weighted_sum,
        ]);
    }
    vec![t]
}

/// **E31** — what a richer reflection alphabet buys at the
/// information-mode (w = 0.1) operating point: PSK order 2 → 8 on both
/// tags. Columns: `states`,
/// `depth`, `primary_rate`, `backscatter_rate`, `weighted_sum`.
pub fn fig_rate_vs_states(seed: u64) -> Table {
    FigScenario::new(e31_spec(seed), e31_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmtag_sim::scenario::Runner;

    fn quick(spec: ScenarioSpec, body: fn(&RunContext) -> Vec<Table>) -> Vec<Table> {
        Runner::new()
            .run_minimized(&FigScenario::new(spec, body), 3, 64)
            .tables
    }

    #[test]
    fn e29_shape() {
        let tables = quick(e29_spec(7), e29_body);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.len(), 3); // minimized weight axis

        // Boundary endpoints: w = 0 favors backscatter, w = 1 kills it.
        assert_eq!(t.cell(0, 0), 0.0);
        assert_eq!(t.cell(2, 0), 1.0);
        assert_eq!(t.cell(2, 3), 0.0, "w = 1 must select pure beamforming");
        assert!(t.cell(0, 3) >= t.cell(2, 3));
    }

    #[test]
    fn e30_shape() {
        let tables = quick(e30_spec(7), e30_body);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3); // Values axis clamped to 3 points
        assert_eq!(tables[0].cell(0, 0), 1.0);
    }

    #[test]
    fn e31_shape() {
        let tables = quick(e31_spec(7), e31_body);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.len(), 3);
        // Every operating point carries a positive optimized weighted sum.
        for r in 0..3 {
            assert!(t.cell(r, 4) > 0.0);
        }
    }
}
