//! The core-aware `BENCH_report.json` schema: building, serializing, and
//! — the part CI actually leans on — *verifying* it.
//!
//! PR 5's report recorded whatever speedups the host produced, which let
//! a 1-core CI box commit `aloha_ensemble_128tags_x16_par4_vs_serial:
//! 0.739` — four time-sliced threads losing to serial, published as if it
//! were a measurement of the pool. This schema makes that impossible to
//! state by accident:
//!
//! * `available_cores` records `std::thread::available_parallelism()` at
//!   measurement time, next to the `threads` knob (`MMTAG_THREADS`) the
//!   run was asked for;
//! * a `par{t}` speedup row on a host with fewer than `t` cores is
//!   **skipped**: the ratio is JSON `null` and a same-named entry in
//!   `skipped` says why (`"cores=1 < threads=4"`). [`verify_report`]
//!   rejects a report that publishes a *numeric* `par{t}` ratio measured
//!   on fewer than `t` cores, and rejects a `null` with no reason;
//! * `scaling_efficiency` (speedup ÷ threads) is emitted for every
//!   parallel row that did run, so a future report can't present 2.1× on
//!   8 threads as a win without the 0.26 efficiency sitting next to it;
//! * `ns_per_bit` carries per-work-unit costs (ns per bit for BER rows,
//!   per trial for outage, per sample for the Gaussian fills) — the
//!   machine-comparable form of the kernel numbers;
//! * the `*_lanes_vs_batch` and `fft1024_radix4_vs_radix2` ratios are
//!   **gated**: [`verify_report`] fails if any slips below
//!   [`KERNEL_FLOOR`] (a >10% regression of a lane kernel against the
//!   batch kernel it replaced).
//!
//! The verifier parses the report into a tiny JSON DOM ([`Json`]) —
//! shape-checking needs values, not just well-formedness, and the
//! workspace is dependency-free by design, so no serde.

use crate::timing::BenchResult;
use mmtag_rf::obs::SpanStat;

/// Minimum admissible value for the gated kernel-speedup rows: a ratio
/// below this means the "optimized" kernel lost more than 10% to its
/// predecessor, which is a regression, not noise.
pub const KERNEL_FLOOR: f64 = 0.9;

/// Speedup-row suffixes gated by [`KERNEL_FLOOR`].
const GATED_SUFFIX: &str = "_lanes_vs_batch";
/// Individually gated rows (same floor). `city_calendar_vs_heap_des` is
/// the city engine's DES speedup: the sharded calendar-queue engine run
/// serially against the heap-scheduler reference on the same deployment —
/// a ratio below the floor means the calendar queue lost >10% to the
/// binary heap it replaced.
const GATED_ROWS: [&str; 2] = ["fft1024_radix4_vs_radix2", "city_calendar_vs_heap_des"];

/// Throughput-row suffixes [`verify_report`] requires: the city engine
/// must publish how many tags it inventories and how many DES events it
/// retires per wall-clock second.
const THROUGHPUT_SUFFIXES: [&str; 2] = ["_tags_per_sec", "_events_per_sec"];

/// Rows the `serving` section must carry: client-observed latency
/// quantiles for the cache-hit and cache-miss paths (µs, from the obs
/// log₂ histograms), sustained jobs/s, the server-reported cache hit
/// ratio under the default loadgen mix, and the sweep-heavy-mix
/// throughput pair (`sweep` jobs retired per second and grid points
/// streamed per second).
pub const SERVING_REQUIRED: [&str; 8] = [
    "hit_p50_us",
    "hit_p99_us",
    "miss_p50_us",
    "miss_p99_us",
    "jobs_per_sec",
    "cache_hit_ratio",
    "sweep_jobs_per_sec",
    "points_per_sec",
];

/// The multi-executor serving row: jobs/s at `N` executors over jobs/s
/// at 1, divided by `N`. Core-aware like the `par{t}` speedup rows — on
/// a host with fewer than 2 cores it must be `null` with a reason in
/// `skipped`, because two time-sliced executors measure the scheduler,
/// not the serving stack.
pub const SERVE_SCALING_ROW: &str = "serving_scaling_efficiency";

/// Minimum admissible [`SERVE_SCALING_ROW`]: efficiency 0.5 is the
/// break-even where `N` executors merely tie one, so a published number
/// at or below ~0.55 means adding executors bought nothing — the report
/// may not present that as multi-core serving throughput.
pub const SERVE_SCALING_FLOOR: f64 = 0.55;

/// The sweep-fanout gate row (lives in `speedups`): points/s of one
/// cache-cold ≥64-point `sweep` request over points/s of the same grid
/// issued as individual `run` requests at equal thread budget.
pub const SWEEP_FANOUT_ROW: &str = "sweep_fanout_vs_pointwise";

/// Minimum admissible [`SWEEP_FANOUT_ROW`]: the sweep op exists to
/// amortize admission, canonicalization, and cache I/O across the grid
/// and to fan points outward — if one sweep request is not at least
/// twice as fast as the pointwise protocol it replaced, the op is
/// machinery without a win. Core-aware: `null` + reason on 1-core hosts.
pub const SWEEP_FANOUT_FLOOR: f64 = 2.0;

/// The serving gate: a cache hit (in-memory surface interpolation) must
/// be at least this many times faster at p99 than the *median* cache
/// miss (a full simulation). If serving a precomputed surface is within
/// 10× of recomputing it, the cache-first path has regressed into
/// pointless machinery.
pub const SERVE_HIT_FACTOR: f64 = 10.0;

/// Minimum admissible cache hit ratio for the committed report: the
/// default loadgen mix revisits a small spec pool, so a ratio at or
/// below 0.5 means the daemon is re-simulating work it already holds.
pub const SERVE_HIT_RATIO_FLOOR: f64 = 0.5;

/// Rows the `rate_region` section must carry: the per-trial cost of the
/// E29 sweep kernel and the single-tag AWGN anchor — the Monte-Carlo
/// primary rate of the degenerate (one tag, K = ∞) scene next to its
/// closed form `log2(1 + ρ|1 + a·ĉ|²)` and the absolute error between
/// them.
pub const RATE_REGION_REQUIRED: [&str; 4] = [
    "ns_per_trial",
    "single_tag_awgn_primary",
    "single_tag_awgn_closed_form",
    "single_tag_awgn_anchor_err",
];

/// The rate-region gate: with every K-factor infinite the scene has no
/// randomness left, so the Monte-Carlo estimate must agree with the
/// closed form to floating-point accumulation error — anything larger
/// means the estimator itself drifted.
pub const RATE_ANCHOR_TOL: f64 = 1e-6;

/// Everything that goes into `BENCH_report.json`, gathered by
/// `bench_report` and serialized by [`Report::to_json`].
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The thread budget the run was asked for (`MMTAG_THREADS` /
    /// [`mmtag_rf::par::thread_limit`]).
    pub threads: usize,
    /// Physical truth: `available_parallelism()` on the measuring host.
    pub available_cores: usize,
    /// Raw per-bench timings.
    pub benches: Vec<BenchResult>,
    /// Named speedup ratios; `None` means the row was skipped (see
    /// [`Report::skipped`]) and serializes as JSON `null`.
    pub speedups: Vec<(String, Option<f64>)>,
    /// Why each skipped speedup row was skipped, keyed by row name.
    pub skipped: Vec<(String, String)>,
    /// Speedup ÷ thread count for each parallel row that ran.
    pub scaling_efficiency: Vec<(String, f64)>,
    /// Per-work-unit kernel costs (ns per bit / trial / sample).
    pub ns_per_bit: Vec<(String, f64)>,
    /// Wall-clock throughput rows (`*_tags_per_sec`, `*_events_per_sec`)
    /// from the city-engine benches.
    pub throughput: Vec<(String, f64)>,
    /// Serving-stack rows from the in-process loadgen passes (see
    /// [`SERVING_REQUIRED`] for the mandatory keys). `None` rows are
    /// core-aware skips ([`SERVE_SCALING_ROW`] on 1-core hosts) and
    /// serialize as JSON `null` with their reason in [`Report::skipped`].
    pub serving: Vec<(String, Option<f64>)>,
    /// Rate-region sweep rows: kernel cost and the single-tag AWGN anchor
    /// (see [`RATE_REGION_REQUIRED`] for the mandatory keys).
    pub rate_region: Vec<(String, f64)>,
    /// Observability span breakdown from the traced pass.
    pub spans: Vec<SpanStat>,
}

impl Report {
    /// Serializes the report. Key order is fixed so diffs of the
    /// committed artifact stay readable.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num_obj(out: &mut String, name: &str, rows: &[(String, f64)], prec: usize) {
            out.push_str(&format!("  \"{name}\": {{\n"));
            for (i, (k, v)) in rows.iter().enumerate() {
                let v = format!("{v:.prec$}");
                out.push_str(&format!(
                    "    \"{}\": {}{}\n",
                    esc(k),
                    v,
                    if i + 1 < rows.len() { "," } else { "" }
                ));
            }
            out.push_str("  },\n");
        }
        fn num_obj_opt(out: &mut String, name: &str, rows: &[(String, Option<f64>)], prec: usize) {
            out.push_str(&format!("  \"{name}\": {{\n"));
            for (i, (k, v)) in rows.iter().enumerate() {
                let v = match v {
                    Some(v) => format!("{v:.prec$}"),
                    None => "null".to_string(),
                };
                out.push_str(&format!(
                    "    \"{}\": {}{}\n",
                    esc(k),
                    v,
                    if i + 1 < rows.len() { "," } else { "" }
                ));
            }
            out.push_str("  },\n");
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"available_cores\": {},\n",
            self.available_cores
        ));
        out.push_str("  \"benches\": {\n");
        for (i, r) in self.benches.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"ns_per_iter\": {:.1}, \"iters\": {}}}{}\n",
                esc(&r.name),
                r.ns_per_iter,
                r.iters,
                if i + 1 < self.benches.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"speedups\": {\n");
        for (i, (name, ratio)) in self.speedups.iter().enumerate() {
            let v = match ratio {
                Some(r) => format!("{r:.3}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                esc(name),
                v,
                if i + 1 < self.speedups.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"skipped\": {\n");
        for (i, (name, why)) in self.skipped.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": \"{}\"{}\n",
                esc(name),
                esc(why),
                if i + 1 < self.skipped.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n");
        num_obj(&mut out, "scaling_efficiency", &self.scaling_efficiency, 3);
        num_obj(&mut out, "ns_per_bit", &self.ns_per_bit, 4);
        num_obj(&mut out, "throughput", &self.throughput, 1);
        num_obj_opt(&mut out, "serving", &self.serving, 4);
        num_obj(&mut out, "rate_region", &self.rate_region, 9);
        out.push_str("  \"spans\": {\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"total_us\": {:.3}, \"max_us\": {:.3}}}{}\n",
                esc(&s.name),
                s.count,
                s.total_us,
                s.max_us,
                if i + 1 < self.spans.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

// The JSON DOM the verifier walks lives in `mmtag_sim::json` since the
// serve layer needs the same parser below the bench crate; re-exported
// here so existing `mmtag_bench::report::{Json, parse_json}` callers
// keep working.
pub use mmtag_sim::json::{parse_json, Json};

/// Extracts the pinned thread count from a `…par{t}_vs_serial` speedup
/// row name (`None` for rows that aren't parallel-vs-serial).
fn par_threads(name: &str) -> Option<usize> {
    let stem = name.strip_suffix("_vs_serial")?;
    let at = stem.rfind("_par")?;
    let digits = &stem[at + 4..];
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// The `--verify` gate over a committed `BENCH_report.json`.
///
/// Checks, in order:
/// 1. the document parses and has `threads`, `available_cores` (integer
///    ≥ 1), non-empty `benches`, `speedups`, `skipped`, and a non-empty
///    `ns_per_bit` of finite positive numbers;
/// 2. no *numeric* `par{t}_vs_serial` speedup was measured with
///    `t > available_cores` — those rows must be `null` with a reason in
///    `skipped` (and any `null` row must carry a reason);
/// 3. every gated kernel row (`*_lanes_vs_batch`,
///    `fft1024_radix4_vs_radix2`, `city_calendar_vs_heap_des`) is
///    present, numeric, and at least [`KERNEL_FLOOR`];
/// 4. `throughput` is present with finite positive numbers and carries
///    at least one `*_tags_per_sec` and one `*_events_per_sec` row — the
///    city engine's wall-clock numbers cannot silently drop out;
/// 5. `serving` is present with every [`SERVING_REQUIRED`] row numeric,
///    the cache-hit p99 beats the cache-miss p50 by at least
///    [`SERVE_HIT_FACTOR`], the hit ratio exceeds
///    [`SERVE_HIT_RATIO_FLOOR`] (and is ≤ 1), and `jobs_per_sec` and
///    `points_per_sec` are positive — a report missing the serving
///    section predates the daemon and is rejected. The
///    [`SERVE_SCALING_ROW`] must be present and core-aware: numeric only
///    when measured on ≥ 2 cores and then at least
///    [`SERVE_SCALING_FLOOR`], otherwise `null` with a reason in
///    `skipped`. The [`SWEEP_FANOUT_ROW`] in `speedups` follows the same
///    shape with its own [`SWEEP_FANOUT_FLOOR`];
/// 6. `rate_region` is present with every [`RATE_REGION_REQUIRED`] row,
///    `ns_per_trial` is positive, and the single-tag AWGN anchor error is
///    within [`RATE_ANCHOR_TOL`] of the closed form — the E29 estimator
///    cannot silently drift off its analytic pin.
pub fn verify_report(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let cores = doc
        .get("available_cores")
        .and_then(Json::as_num)
        .ok_or("report lacks \"available_cores\"")?;
    if cores < 1.0 || cores.fract() != 0.0 {
        return Err(format!(
            "\"available_cores\" must be a positive integer, got {cores}"
        ));
    }
    let cores = cores as usize;
    doc.get("threads")
        .and_then(Json::as_num)
        .ok_or("report lacks \"threads\"")?;
    let benches = doc
        .get("benches")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"benches\"")?;
    if benches.is_empty() {
        return Err("\"benches\" is empty".into());
    }
    let speedups = doc
        .get("speedups")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"speedups\"")?;
    let skipped = doc
        .get("skipped")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"skipped\" (pre-core-aware schema?)")?;
    let ns_per_bit = doc
        .get("ns_per_bit")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"ns_per_bit\"")?;
    if ns_per_bit.is_empty() {
        return Err("\"ns_per_bit\" is empty".into());
    }
    for (k, v) in ns_per_bit {
        match v.as_num() {
            Some(x) if x.is_finite() && x > 0.0 => {}
            _ => return Err(format!("ns_per_bit[\"{k}\"] is not a positive number")),
        }
    }
    let throughput = doc
        .get("throughput")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"throughput\" (pre-city schema?)")?;
    for (k, v) in throughput {
        match v.as_num() {
            Some(x) if x.is_finite() && x > 0.0 => {}
            _ => return Err(format!("throughput[\"{k}\"] is not a positive number")),
        }
    }
    for suffix in THROUGHPUT_SUFFIXES {
        if !throughput.iter().any(|(k, _)| k.ends_with(suffix)) {
            return Err(format!(
                "no \"*{suffix}\" row in \"throughput\" — the city engine's \
                 wall-clock numbers are not being tracked"
            ));
        }
    }
    let serving = doc
        .get("serving")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"serving\" (pre-daemon schema?)")?;
    let serving_row = |key: &str| -> Result<f64, String> {
        let v = serving
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or(format!("\"serving\" lacks required row \"{key}\""))?;
        match v.as_num() {
            Some(x) if x.is_finite() && x >= 0.0 => Ok(x),
            _ => Err(format!("serving[\"{key}\"] is not a finite number")),
        }
    };
    for key in SERVING_REQUIRED {
        serving_row(key)?;
    }
    let hit_p99 = serving_row("hit_p99_us")?;
    let miss_p50 = serving_row("miss_p50_us")?;
    if miss_p50 < SERVE_HIT_FACTOR * hit_p99 {
        return Err(format!(
            "serving hit-path p99 ({hit_p99} µs) is not ≥{SERVE_HIT_FACTOR}× faster \
             than miss-path p50 ({miss_p50} µs) — the cache-first path has regressed"
        ));
    }
    let ratio = serving_row("cache_hit_ratio")?;
    if ratio <= SERVE_HIT_RATIO_FLOOR || ratio > 1.0 {
        return Err(format!(
            "serving cache_hit_ratio = {ratio} is outside \
             ({SERVE_HIT_RATIO_FLOOR}, 1.0] — the default mix must mostly hit"
        ));
    }
    if serving_row("jobs_per_sec")? <= 0.0 {
        return Err("serving jobs_per_sec is not positive".into());
    }
    if serving_row("points_per_sec")? <= 0.0 {
        return Err("serving points_per_sec is not positive".into());
    }
    let scaling_row = serving
        .iter()
        .rev()
        .find(|(k, _)| k == SERVE_SCALING_ROW)
        .map(|(_, v)| v)
        .ok_or(format!(
            "\"serving\" lacks the \"{SERVE_SCALING_ROW}\" row — multi-executor \
             throughput is not being tracked"
        ))?;
    match scaling_row {
        Json::Null => {
            if !skipped.iter().any(|(k, _)| k == SERVE_SCALING_ROW) {
                return Err(format!(
                    "serving \"{SERVE_SCALING_ROW}\" is null with no entry in \"skipped\""
                ));
            }
        }
        Json::Num(eff) => {
            if cores < 2 {
                return Err(format!(
                    "serving \"{SERVE_SCALING_ROW}\" claims a multi-executor measurement \
                     on {cores} core(s) — time-sliced, not parallel; must be skipped \
                     (null + reason)"
                ));
            }
            if !eff.is_finite() || *eff < SERVE_SCALING_FLOOR {
                return Err(format!(
                    "serving \"{SERVE_SCALING_ROW}\" = {eff} is below the \
                     {SERVE_SCALING_FLOOR} floor — extra executors bought nothing"
                ));
            }
        }
        _ => {
            return Err(format!(
                "serving \"{SERVE_SCALING_ROW}\" is neither a number nor null"
            ))
        }
    }
    let rate_region = doc
        .get("rate_region")
        .and_then(Json::as_obj)
        .ok_or("report lacks \"rate_region\" (pre-E29 schema?)")?;
    let rate_row = |key: &str| -> Result<f64, String> {
        let v = rate_region
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or(format!("\"rate_region\" lacks required row \"{key}\""))?;
        match v.as_num() {
            Some(x) if x.is_finite() && x >= 0.0 => Ok(x),
            _ => Err(format!("rate_region[\"{key}\"] is not a finite number")),
        }
    };
    for key in RATE_REGION_REQUIRED {
        rate_row(key)?;
    }
    if rate_row("ns_per_trial")? <= 0.0 {
        return Err("rate_region ns_per_trial is not positive".into());
    }
    let anchor_err = rate_row("single_tag_awgn_anchor_err")?;
    if anchor_err > RATE_ANCHOR_TOL {
        return Err(format!(
            "rate_region single_tag_awgn_anchor_err = {anchor_err} exceeds \
             {RATE_ANCHOR_TOL} — the E29 estimator drifted off its closed-form pin"
        ));
    }

    let has_reason = |name: &str| skipped.iter().any(|(k, _)| k == name);
    for (name, v) in speedups {
        match v {
            Json::Null => {
                if !has_reason(name) {
                    return Err(format!(
                        "speedup \"{name}\" is null with no entry in \"skipped\""
                    ));
                }
            }
            Json::Num(ratio) => {
                if let Some(t) = par_threads(name) {
                    if t > cores {
                        return Err(format!(
                            "speedup \"{name}\" claims a {t}-thread measurement on \
                             {cores} core(s) — time-sliced, not parallel; must be \
                             skipped (null + reason)"
                        ));
                    }
                }
                if name == SWEEP_FANOUT_ROW {
                    if cores < 2 {
                        return Err(format!(
                            "speedup \"{SWEEP_FANOUT_ROW}\" claims a fanout measurement \
                             on {cores} core(s) — time-sliced, not parallel; must be \
                             skipped (null + reason)"
                        ));
                    }
                    if *ratio < SWEEP_FANOUT_FLOOR {
                        return Err(format!(
                            "gated sweep speedup \"{SWEEP_FANOUT_ROW}\" = {ratio:.3} is \
                             below the {SWEEP_FANOUT_FLOOR} floor — one sweep request \
                             must beat the pointwise protocol it replaced"
                        ));
                    }
                }
                if (name.ends_with(GATED_SUFFIX) || GATED_ROWS.contains(&name.as_str()))
                    && *ratio < KERNEL_FLOOR
                {
                    return Err(format!(
                        "gated kernel speedup \"{name}\" = {ratio:.3} is below the \
                         {KERNEL_FLOOR} floor (>10% regression)"
                    ));
                }
            }
            _ => return Err(format!("speedup \"{name}\" is neither a number nor null")),
        }
    }
    for row in GATED_ROWS {
        if !speedups.iter().any(|(k, _)| k == row) {
            return Err(format!("gated kernel speedup \"{row}\" is missing"));
        }
    }
    if !speedups.iter().any(|(k, _)| k == SWEEP_FANOUT_ROW) {
        return Err(format!(
            "gated sweep speedup \"{SWEEP_FANOUT_ROW}\" is missing — the sweep-vs-pointwise \
             trajectory is not being tracked"
        ));
    }
    if !speedups.iter().any(|(k, _)| k.ends_with(GATED_SUFFIX)) {
        return Err(format!(
            "no \"*{GATED_SUFFIX}\" rows — the lane-kernel trajectory is not being tracked"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_report() -> Report {
        Report {
            threads: 4,
            available_cores: 1,
            benches: vec![BenchResult {
                name: "k".into(),
                iters: 3,
                ns_per_iter: 10.0,
            }],
            speedups: vec![
                ("ber_kernel_lanes_vs_batch".into(), Some(1.26)),
                ("fft1024_radix4_vs_radix2".into(), Some(1.65)),
                ("city_calendar_vs_heap_des".into(), Some(1.08)),
                ("ber_point_100kbit_par1_vs_serial".into(), Some(0.99)),
                ("ber_point_100kbit_par4_vs_serial".into(), None),
                ("sweep_fanout_vs_pointwise".into(), None),
            ],
            skipped: vec![
                (
                    "ber_point_100kbit_par4_vs_serial".into(),
                    "cores=1 < threads=4".into(),
                ),
                ("sweep_fanout_vs_pointwise".into(), "cores=1 < 2".into()),
                ("serving_scaling_efficiency".into(), "cores=1 < 2".into()),
            ],
            scaling_efficiency: vec![("ber_point_100kbit_par1".into(), 0.99)],
            ns_per_bit: vec![("ber_kernel_lanes".into(), 53.2)],
            throughput: vec![
                ("city_100k_tags_per_sec".into(), 2.5e6),
                ("city_100k_events_per_sec".into(), 8.1e6),
            ],
            serving: vec![
                ("hit_p50_us".into(), Some(64.0)),
                ("hit_p99_us".into(), Some(256.0)),
                ("miss_p50_us".into(), Some(8192.0)),
                ("miss_p99_us".into(), Some(16384.0)),
                ("jobs_per_sec".into(), Some(3200.0)),
                ("cache_hit_ratio".into(), Some(0.9)),
                ("sweep_jobs_per_sec".into(), Some(40.0)),
                ("points_per_sec".into(), Some(820.0)),
                ("serving_scaling_efficiency".into(), None),
            ],
            rate_region: vec![
                ("ns_per_trial".into(), 21_000.0),
                ("single_tag_awgn_primary".into(), 3.9),
                ("single_tag_awgn_closed_form".into(), 3.9),
                ("single_tag_awgn_anchor_err".into(), 0.0),
            ],
            spans: vec![],
        }
    }

    #[test]
    fn round_trip_report_verifies() {
        let json = base_report().to_json();
        crate::timing::validate_json(&json).unwrap();
        verify_report(&json).unwrap();
    }

    #[test]
    fn par_thread_names_parse() {
        assert_eq!(par_threads("ber_point_100kbit_par4_vs_serial"), Some(4));
        assert_eq!(
            par_threads("aloha_ensemble_128tags_x16_par16_vs_serial"),
            Some(16)
        );
        assert_eq!(par_threads("ber_kernel_lanes_vs_batch"), None);
        assert_eq!(par_threads("something_par_vs_serial"), None);
    }

    #[test]
    fn numeric_par_row_beyond_core_count_is_rejected() {
        let mut r = base_report();
        r.speedups[4].1 = Some(0.739); // the PR 5 lie, restated
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("time-sliced"), "{err}");
    }

    #[test]
    fn null_without_reason_is_rejected() {
        let mut r = base_report();
        r.skipped.clear();
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("no entry in \"skipped\""), "{err}");
    }

    #[test]
    fn kernel_regression_is_rejected() {
        let mut r = base_report();
        r.speedups[0].1 = Some(0.85);
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("below the 0.9 floor"), "{err}");
    }

    #[test]
    fn missing_gated_rows_are_rejected() {
        let mut r = base_report();
        r.speedups.remove(1);
        assert!(verify_report(&r.to_json())
            .unwrap_err()
            .contains("fft1024_radix4_vs_radix2"));
        let mut r = base_report();
        r.speedups.remove(0);
        assert!(verify_report(&r.to_json())
            .unwrap_err()
            .contains("lane-kernel trajectory"));
    }

    #[test]
    fn city_des_regression_is_rejected() {
        let mut r = base_report();
        r.speedups[2].1 = Some(0.42); // calendar queue losing badly to the heap
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("city_calendar_vs_heap_des"), "{err}");
        assert!(err.contains("below the 0.9 floor"), "{err}");
    }

    #[test]
    fn missing_throughput_rows_are_rejected() {
        let mut r = base_report();
        r.throughput.clear();
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("_tags_per_sec"), "{err}");

        let mut r = base_report();
        r.throughput.remove(1); // keep tags_per_sec, drop events_per_sec
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("_events_per_sec"), "{err}");

        let mut r = base_report();
        r.throughput[0].1 = 0.0; // a throughput of zero is a broken bench
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("not a positive number"), "{err}");
    }

    #[test]
    fn missing_serving_section_is_rejected() {
        let mut r = base_report();
        r.serving.clear();
        // An empty serving object serializes as {} — still "present", so
        // the required-row check is what fires.
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("hit_p50_us"), "{err}");

        // A report with no serving key at all (pre-daemon schema).
        let json = base_report().to_json();
        let stripped = {
            let start = json.find("  \"serving\"").unwrap();
            let end = json[start..].find("},\n").unwrap() + start + 3;
            format!("{}{}", &json[..start], &json[end..])
        };
        let err = verify_report(&stripped).unwrap_err();
        assert!(err.contains("pre-daemon"), "{err}");
    }

    #[test]
    fn slow_hit_path_is_rejected() {
        let mut r = base_report();
        // Hit p99 = 4096 µs vs miss p50 = 8192 µs: less than 10× apart.
        r.serving[1].1 = Some(4096.0);
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("cache-first path has regressed"), "{err}");
    }

    #[test]
    fn low_cache_hit_ratio_is_rejected() {
        let mut r = base_report();
        r.serving[5].1 = Some(0.5); // the floor is exclusive
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("cache_hit_ratio"), "{err}");

        let mut r = base_report();
        r.serving[5].1 = Some(1.2); // a ratio above 1 is a broken counter
        assert!(verify_report(&r.to_json()).is_err());
    }

    /// A report from a multi-core host: the same fixture with the
    /// core-aware rows measured instead of skipped.
    fn multicore_report() -> Report {
        let mut r = base_report();
        r.available_cores = 4;
        r.speedups[4].1 = Some(2.9); // par4 ran for real
        r.speedups[5].1 = Some(3.1); // sweep fanout measured
        r.skipped.clear();
        r.serving[8].1 = Some(0.8); // scaling efficiency measured
        r
    }

    #[test]
    fn multicore_report_with_measured_sweep_rows_verifies() {
        verify_report(&multicore_report().to_json()).unwrap();
    }

    #[test]
    fn missing_sweep_serving_rows_are_rejected() {
        let mut r = base_report();
        r.serving.remove(7); // drop points_per_sec
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("points_per_sec"), "{err}");

        let mut r = base_report();
        r.serving.remove(8); // drop the scaling row entirely
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("serving_scaling_efficiency"), "{err}");
    }

    #[test]
    fn scaling_efficiency_on_one_core_must_be_skipped() {
        let mut r = base_report();
        r.serving[8].1 = Some(0.9); // numeric on a 1-core host: a lie
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("time-sliced"), "{err}");

        let mut r = base_report();
        // Null is fine, but only with a reason in `skipped`.
        r.skipped.retain(|(k, _)| k != "serving_scaling_efficiency");
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("no entry in \"skipped\""), "{err}");
    }

    #[test]
    fn scaling_efficiency_below_floor_is_rejected() {
        let mut r = multicore_report();
        r.serving[8].1 = Some(0.5); // 2 executors tying 1: not a win
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("extra executors bought nothing"), "{err}");
    }

    #[test]
    fn sweep_fanout_gate_holds_the_two_x_floor() {
        let mut r = multicore_report();
        r.speedups[5].1 = Some(1.4); // below the 2× bar
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("sweep_fanout_vs_pointwise"), "{err}");
        assert!(err.contains("below the 2 floor"), "{err}");

        let mut r = multicore_report();
        r.speedups.remove(5);
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("sweep-vs-pointwise trajectory"), "{err}");
    }

    #[test]
    fn sweep_fanout_on_one_core_must_be_skipped() {
        let mut r = base_report();
        r.speedups[5].1 = Some(2.5); // numeric fanout on a 1-core host
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("time-sliced"), "{err}");
    }

    #[test]
    fn missing_rate_region_section_is_rejected() {
        let mut r = base_report();
        r.rate_region.clear();
        // An empty rate_region object serializes as {} — still "present",
        // so the required-row check is what fires.
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("ns_per_trial"), "{err}");

        // A report with no rate_region key at all (pre-E29 schema).
        let json = base_report().to_json();
        let stripped = {
            let start = json.find("  \"rate_region\"").unwrap();
            let end = json[start..].find("},\n").unwrap() + start + 3;
            format!("{}{}", &json[..start], &json[end..])
        };
        let err = verify_report(&stripped).unwrap_err();
        assert!(err.contains("pre-E29"), "{err}");
    }

    #[test]
    fn drifted_rate_anchor_is_rejected() {
        let mut r = base_report();
        r.rate_region[3].1 = 1e-3; // way past fp accumulation error
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("closed-form pin"), "{err}");
    }

    #[test]
    fn zero_rate_kernel_cost_is_rejected() {
        let mut r = base_report();
        r.rate_region[0].1 = 0.0;
        let err = verify_report(&r.to_json()).unwrap_err();
        assert!(err.contains("ns_per_trial is not positive"), "{err}");
    }

    #[test]
    fn pre_core_aware_reports_are_rejected() {
        // The PR 5 shape: no available_cores, no skipped, no ns_per_bit.
        let old = r#"{"threads": 4, "benches": {"k": {"ns_per_iter": 1.0, "iters": 1}},
                      "speedups": {"a_par4_vs_serial": 0.739}, "spans": {}}"#;
        assert!(verify_report(old).is_err());
    }
}
