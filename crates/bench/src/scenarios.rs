//! The scenario registry: every experiment in this crate, enumerable and
//! runnable by name.
//!
//! Each figure module defines its experiments as `(spec, body)` pairs —
//! a [`ScenarioSpec`] declaring the sweep axes, device configs, trial
//! count and seed, plus a plain function interpreting that spec into
//! tables. [`FigScenario`] packages such a pair behind the
//! [`Scenario`] trait, and [`registry`] collects all of them so the
//! figure binaries, the CLI `run` command and the CI smoke step resolve
//! experiments uniformly instead of wiring sweeps by hand.

use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{Registry, RunContext, RunRecord, Runner, Scenario, ScenarioSpec};

/// The body of a figure experiment: a pure function from the run context
/// (spec + seed tree + thread budget) to result tables.
pub type FigBody = fn(&RunContext) -> Vec<Table>;

/// A registry-ready experiment: a typed spec paired with the function
/// that interprets it. All 31 experiments in this crate are instances.
pub struct FigScenario {
    spec: ScenarioSpec,
    body: FigBody,
}

impl FigScenario {
    /// Pairs a spec with its body.
    pub fn new(spec: ScenarioSpec, body: FigBody) -> Self {
        FigScenario { spec, body }
    }

    /// Runs the scenario through a default [`Runner`] and returns the
    /// full structured record.
    pub fn record(&self) -> RunRecord {
        Runner::new().run(self)
    }

    /// Runs the scenario and returns its first table — the shape the
    /// public `fig_*` functions preserve.
    pub fn table(&self) -> Table {
        self.record().into_table()
    }
}

impl Scenario for FigScenario {
    fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    fn run(&self, ctx: &RunContext) -> Vec<Table> {
        (self.body)(ctx)
    }

    fn with_spec(&self, spec: ScenarioSpec) -> Box<dyn Scenario> {
        Box::new(FigScenario {
            spec,
            body: self.body,
        })
    }
}

/// Builds the full registry: every experiment E1–E31 under its canonical
/// name, with the exact default parameters the figure binaries publish.
pub fn registry() -> Registry {
    let mut reg = Registry::new();
    let mut add = |spec: ScenarioSpec, body: FigBody| {
        reg.register(Box::new(FigScenario::new(spec, body)));
    };

    add(
        crate::eval::e1_spec(crate::eval::E1_POINTS),
        crate::eval::e1_body,
    );
    add(crate::eval::e2_spec(), crate::eval::e2_body);
    add(crate::antenna_figs::e3_spec(), crate::antenna_figs::e3_body);
    add(
        crate::system_tables::e4_spec(),
        crate::system_tables::e4_body,
    );
    add(
        crate::phy_figs::e5_spec(200_000, 2024),
        crate::phy_figs::e5_body,
    );
    add(crate::antenna_figs::e6_spec(), crate::antenna_figs::e6_body);
    add(
        crate::network_figs::e7_spec(11),
        crate::network_figs::e7_body,
    );
    add(crate::network_figs::e8_spec(), crate::network_figs::e8_body);
    add(
        crate::system_tables::e9_spec(),
        crate::system_tables::e9_body,
    );
    add(
        crate::system_tables::e10_spec(),
        crate::system_tables::e10_body,
    );
    add(
        crate::system_tables::e11_spec(),
        crate::system_tables::e11_body,
    );
    add(
        crate::network_figs::e12_spec(),
        crate::network_figs::e12_body,
    );
    add(crate::extensions::e13_spec(7), crate::extensions::e13_body);
    add(crate::extensions::e14_spec(), crate::extensions::e14_body);
    add(
        crate::extensions::e15_spec(200_000, 3),
        crate::extensions::e15_body,
    );
    add(
        crate::extensions::e16_spec(200_000, 5),
        crate::extensions::e16_body,
    );
    add(crate::extensions::e17_spec(), crate::extensions::e17_body);
    add(crate::extensions::e18_spec(), crate::extensions::e18_body);
    add(crate::extensions::e19_spec(), crate::extensions::e19_body);
    add(crate::extensions::e20_spec(3), crate::extensions::e20_body);
    add(
        crate::extensions::e21_spec(1000, 4),
        crate::extensions::e21_body,
    );
    add(crate::extensions::e22_spec(7), crate::extensions::e22_body);
    add(crate::advanced::e23_spec(), crate::advanced::e23_body);
    add(crate::advanced::e24_spec(33), crate::advanced::e24_body);
    add(crate::advanced::e25_spec(), crate::advanced::e25_body);
    add(
        crate::advanced::e26_spec(100_000, 7),
        crate::advanced::e26_body,
    );
    add(crate::city_figs::e27_spec(7), crate::city_figs::e27_body);
    add(crate::city_figs::e28_spec(7), crate::city_figs::e28_body);
    add(crate::rate_figs::e29_spec(7), crate::rate_figs::e29_body);
    add(crate::rate_figs::e30_spec(7), crate::rate_figs::e30_body);
    add(crate::rate_figs::e31_spec(7), crate::rate_figs::e31_body);

    reg
}

/// Runs a registered scenario and prints its tables — what every figure
/// binary calls. The rendered bytes are identical to the historical
/// per-table `println!("{}", table.render())` output.
///
/// # Panics
/// Panics on an unregistered name — a figure binary naming a scenario the
/// registry lacks is a wiring bug.
pub fn print_scenario(name: &str) {
    let record = registry()
        .run(name, &Runner::new())
        .unwrap_or_else(|| panic!("scenario '{name}' is not registered"));
    print!("{}", record.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_31_experiments_in_order() {
        let reg = registry();
        assert_eq!(reg.len(), 31);
        let names = reg.names();
        assert_eq!(names[0], "e01-s11");
        assert_eq!(names[1], "e02-link-budget");
        assert_eq!(names[25], "e26-cancellation");
        assert_eq!(names[26], "e27-city-density");
        assert_eq!(names[27], "e28-city-mobility");
        assert_eq!(names[28], "e29-rate-region");
        assert_eq!(names[29], "e30-rate-vs-tags");
        assert_eq!(names[30], "e31-rate-vs-states");
        // Every name carries its E-number prefix, zero-padded, kebab-case.
        for (i, name) in names.iter().enumerate() {
            assert!(
                name.starts_with(&format!("e{:02}-", i + 1)),
                "name '{name}' out of order at slot {i}"
            );
        }
    }

    #[test]
    fn registry_runs_match_the_public_wrappers() {
        let reg = registry();
        let via_registry = reg
            .run("e02-link-budget", &Runner::new())
            .unwrap()
            .into_table();
        let via_wrapper = crate::eval::fig7_link_budget();
        assert_eq!(via_registry.render(), via_wrapper.render());
    }
}
