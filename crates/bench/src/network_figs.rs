//! E7, E8, E12: network-level experiments — MAC, mobility, NLOS.

use crate::scenarios::FigScenario;
use mmtag::prelude::*;
use mmtag::scenario::{build_reader, build_scene, build_tag, offset_poses};
use mmtag_mac::aloha::{inventory_until_drained, slotted_aloha_throughput, QAlgorithm};
use mmtag_mac::{ScanSchedule, SectorScheduler};
use mmtag_rf::rng::Xoshiro256pp;
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E7** spec: the population sweep under `seed`.
pub(crate) fn e7_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e07-aloha",
        "E7 — inventory cost vs population: single domain vs SDM sectors",
    )
    .with_axis(
        "tags",
        AxisKind::Values(vec![4.0, 16.0, 64.0, 128.0, 256.0]),
    )
    .with_seed(seed)
}

pub(crate) fn e7_body(ctx: &RunContext) -> Vec<Table> {
    let scan = ScanSchedule::new(
        Angle::from_degrees(120.0),
        Angle::from_degrees(20.0),
        Duration::from_millis(1),
    );
    let mut rng = Xoshiro256pp::seed_from(ctx.spec.seed);
    let mut t = Table::new(
        "E7 — inventory cost vs population: single domain vs SDM sectors",
        &[
            "tags",
            "single_domain_slots",
            "single_eff",
            "sdm_slots",
            "sdm_eff",
            "aloha_bound",
        ],
    );
    for v in ctx.spec.values("tags") {
        let n = v as usize;
        let angles: Vec<Angle> = (0..n)
            .map(|i| Angle::from_degrees(-55.0 + 110.0 * i as f64 / (n.max(2) - 1) as f64))
            .collect();
        let part = SectorScheduler::partition(scan, &angles);
        let single = inventory_until_drained(n, QAlgorithm::new(), 100_000, &mut rng);
        let sdm = part.inventory_sdm(&mut rng);
        t.push_row(&[
            n as f64,
            single.total_slots as f64,
            single.efficiency(),
            sdm.total_slots as f64,
            sdm.efficiency(),
            slotted_aloha_throughput(1.0),
        ]);
    }
    vec![t]
}

/// **E7** — multi-tag inventory: adaptive framed-Aloha slot efficiency and
/// the SDM comparison, vs population size. Columns: `tags`,
/// `single_domain_slots`, `single_eff`, `sdm_slots`, `sdm_eff`,
/// `aloha_bound` (1/e).
pub fn fig_aloha(seed: u64) -> Table {
    FigScenario::new(e7_spec(seed), e7_body).table()
}

/// **E8** spec: the 0–60° rotation sweep at 4 ft (13 samples, 5° apart).
pub(crate) fn e8_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e08-mobility",
        "E8 — achievable rate vs tag rotation at 4 ft: Van Atta vs fixed beam",
    )
    .with_axis(
        "rotation_deg",
        AxisKind::Linspace {
            start: 0.0,
            stop: 60.0,
            points: 13,
        },
    )
}

pub(crate) fn e8_body(ctx: &RunContext) -> Vec<Table> {
    let reader = build_reader(&ctx.spec.reader);
    let scene = build_scene(&ctx.spec.scene);
    let va = build_tag(&ctx.spec.tag);
    let fb = build_tag(&ctx.spec.tag.with_wiring(WiringSpec::FixedBeam));
    let mut t = Table::new(
        "E8 — achievable rate vs tag rotation at 4 ft: Van Atta vs fixed beam",
        &["rotation_deg", "van_atta_mbps", "fixed_beam_mbps"],
    );
    for rot in ctx.spec.values("rotation_deg") {
        let (rp, tp) = offset_poses(4.0, rot, 0.0);
        let r_va = evaluate_link(&reader, &va, &scene, rp, tp);
        let r_fb = evaluate_link(&reader, &fb, &scene, rp, tp);
        t.push_row(&[rot, r_va.rate.mbps(), r_fb.rate.mbps()]);
    }
    vec![t]
}

/// **E8** — mobility: link uptime and mean rate over a 60° rotation sweep
/// for the Van Atta tag vs the fixed-beam baseline, at 4 ft. Columns:
/// `rotation_deg`, `van_atta_mbps`, `fixed_beam_mbps`.
pub fn fig_mobility() -> Table {
    FigScenario::new(e8_spec(), e8_body).table()
}

/// **E12** spec: the 5 × 2 m corridor with the paper's blocker, swept over
/// blocker presence.
pub(crate) fn e12_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e12-nlos",
        "E12 — LOS blockage and NLOS fallback in a 5 × 2 m corridor",
    )
    .with_scene(SceneSpec::room(5.0, 2.0).with_blocker(1.0, 0.8, 1.0, 1.2))
    .with_axis("blocker_present", AxisKind::Values(vec![0.0, 1.0]))
}

pub(crate) fn e12_body(ctx: &RunContext) -> Vec<Table> {
    let reader = build_reader(&ctx.spec.reader);
    let tag = build_tag(&ctx.spec.tag);
    let rp = Pose::new(Vec2::new(0.5, 1.0), Angle::ZERO);
    let tp = Pose::new(Vec2::new(1.5, 1.0), Angle::from_degrees(180.0));

    let mut t = Table::new(
        "E12 — LOS blockage and NLOS fallback in a 5 × 2 m corridor",
        &["blocker_present", "via_los", "power_dbm", "rate_mbps"],
    );
    for blocked in ctx.spec.values("blocker_present") {
        let scene = if blocked != 0.0 {
            build_scene(&ctx.spec.scene)
        } else {
            build_scene(&ctx.spec.scene.without_blockers())
        };
        let r = evaluate_link(&reader, &tag, &scene, rp, tp);
        t.push_row(&[
            blocked,
            r.via_los as u8 as f64,
            r.power.map(|p| p.dbm()).unwrap_or(f64::NEG_INFINITY),
            r.rate.mbps(),
        ]);
    }
    vec![t]
}

/// **E12** — NLOS operation (§4): a corridor with a blocker stepping into
/// the LOS path. Columns: `blocker_present` (0/1), `via_los` (0/1),
/// `power_dbm`, `rate_mbps`.
pub fn fig_nlos() -> Table {
    FigScenario::new(e12_spec(), e12_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aloha_efficiency_approaches_bound() {
        let t = fig_aloha(11);
        for row in 0..t.len() {
            let n = t.cell(row, 0);
            let eff = t.cell(row, 2);
            let sdm_eff = t.cell(row, 4);
            // Small populations pay Q-settling overhead; at scale the
            // adaptive framing holds ≥ 25%, bounded above by 1/e.
            if n >= 64.0 {
                assert!((0.25..=0.3679).contains(&eff), "single-domain eff {eff}");
                assert!(sdm_eff > 0.20, "SDM eff {sdm_eff}");
            } else {
                // Finite frames can slightly beat the asymptotic 1/e:
                // (1 − 1/16)^15 ≈ 0.379 for a lucky n = L = 16 round.
                assert!(eff > 0.08 && eff <= 0.40, "n={n} eff {eff}");
            }
        }
        // Cost grows with population.
        let slots = t.column(1);
        assert!(slots.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn mobility_van_atta_dominates() {
        let t = fig_mobility();
        // Van Atta ≥ 100 Mbps out to 60°; fixed beam below Van Atta from
        // 20° on (sidelobes may blip, but never reach the retro rate).
        for row in 0..t.len() {
            let rot = t.cell(row, 0);
            let va = t.cell(row, 1);
            let fb = t.cell(row, 2);
            assert!(va >= 100.0, "VA at {rot}°: {va} Mbps");
            if rot >= 20.0 {
                assert!(fb < va, "fixed {fb} !< VA {va} at {rot}°");
            }
        }
        // At 0° both equal (1 Gbps).
        assert_eq!(t.cell(0, 1), 1000.0);
        assert_eq!(t.cell(0, 2), 1000.0);
    }

    #[test]
    fn nlos_fallback_keeps_link_alive() {
        let t = fig_nlos();
        assert_eq!(t.cell(0, 1), 1.0, "clear case is LOS");
        assert!(t.cell(0, 3) >= 1000.0, "clear case at 1 Gbps");
        assert_eq!(t.cell(1, 1), 0.0, "blocked case is NLOS");
        assert!(t.cell(1, 3) > 0.0, "NLOS link must be up");
        assert!(t.cell(1, 2) < t.cell(0, 2), "NLOS is weaker");
    }
}
