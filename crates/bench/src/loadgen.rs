//! Load generation for the `mmtag serve` daemon.
//!
//! A seeded, deterministic request-mix generator plus two drive modes:
//!
//! * **closed-loop** — each connection sends its next request as soon as
//!   the previous response arrives; measures the service's best-case
//!   sojourn time,
//! * **open-loop** — requests are *scheduled* at a fixed arrival rate
//!   regardless of completions (a paced writer thread and a matching
//!   reader per connection), so queueing delay under overload is
//!   visible instead of being absorbed by the sender.
//!
//! The same [`generate`] output drives the serving section of
//! `bench_report` and the determinism integration tests: identical
//! request logs must replay to byte-identical response bodies at any
//! executor count, so the generator never draws from wall-clock or
//! OS-entropy sources.
//!
//! Latencies are recorded into log₂ histograms (the
//! [`obs::HistogramStat`] bucket layout) split by **expected** path:
//! the first request naming a given spec is the miss-path sample, every
//! repeat is a hit-path sample. Quantiles are bucket lower bounds —
//! conservative for the `hit_p99 × 10 ≤ miss_p50` gate, which compares
//! a hit upper region against a miss lower region.

use std::io;
use std::time::{Duration, Instant};

use mmtag_rf::obs;
use mmtag_rf::rng::{Rng, SeedTree};
use mmtag_sim::json::{parse_json, Json};
use mmtag_sim::serve::Client;

/// The shape of a generated request stream.
#[derive(Clone, Debug)]
pub struct Mix {
    /// Registry name every request targets.
    pub scenario: String,
    /// Number of distinct seeds (= distinct specs = distinct cache
    /// entries) the stream cycles through.
    pub seed_pool: u64,
    /// `trials` override sent with every request (controls miss cost).
    pub trials: u64,
    /// `points` override sent with every request.
    pub points: u64,
    /// Fraction of `run` ops (the rest are `query`), in percent.
    pub run_percent: u64,
    /// Fraction of requests that are `sweep` ops, in percent (taken off
    /// the top; the remainder splits run/query by `run_percent`).
    pub sweep_percent: u64,
    /// Grid size (`seeds`) each generated sweep request carries.
    pub sweep_points: u64,
    /// Query positions are drawn uniformly from this closed range —
    /// keep it inside the scenario's first axis.
    pub x_range: (f64, f64),
}

impl Mix {
    /// The default mix: `e05-ber` shrunk to a cheap-but-measurable miss
    /// cost, 8 distinct seeds, 20% runs / 80% queries, no sweeps.
    pub fn quick() -> Mix {
        Mix {
            scenario: "e05-ber".to_string(),
            seed_pool: 8,
            trials: 20_000,
            points: 8,
            run_percent: 20,
            sweep_percent: 0,
            sweep_points: 16,
            x_range: (0.0, 14.0),
        }
    }

    /// A sweep-heavy mix: half the requests are grid sweeps, cycling
    /// through `seed_pool` distinct campaigns.
    pub fn sweep_heavy() -> Mix {
        Mix {
            sweep_percent: 50,
            ..Mix::quick()
        }
    }
}

/// One generated request: the wire line plus whether it is the *first*
/// request naming its spec (the expected miss-path sample).
#[derive(Clone, Debug)]
pub struct Request {
    /// The JSON request line (no trailing newline).
    pub line: String,
    /// `true` for the first request of each distinct seed (or sweep
    /// campaign).
    pub expect_miss: bool,
    /// `true` for `sweep` ops — the driver must read a response
    /// *stream*, not a single line.
    pub sweep: bool,
}

/// Generates `n` requests deterministically from `root_seed`. Equal
/// `(mix, n, root_seed)` always produce the identical request log —
/// byte for byte — which is what makes replay-based determinism checks
/// possible.
pub fn generate(mix: &Mix, n: usize, root_seed: u64) -> Vec<Request> {
    let tree = SeedTree::new(root_seed);
    let pool = mix.seed_pool.max(1);
    let mut seen = vec![false; pool as usize];
    let mut seen_campaign = vec![false; pool as usize];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = tree.rng_indexed("loadgen", i as u64);
        let drawn = rng.next_u64() % pool;
        // Requests 0 and 1 pin seed 0 — any run of length >= 2 then
        // contains at least one guaranteed miss (the first use) and one
        // guaranteed hit (its immediate repeat), so short runs can't
        // come out all-miss and make hit-ratio checks flaky.
        let seed = if i <= 1 { 0 } else { drawn };
        let id = i as u64 + 1;
        let op_draw = rng.next_u64() % 100;
        // Sweeps come off the top so requests 0/1 stay point-shaped
        // (the guaranteed miss/hit pair must exercise the point path).
        let is_sweep = i > 1 && op_draw < mix.sweep_percent;
        if is_sweep {
            // Campaign bases live above the point-seed pool so sweep
            // grids never collide with point-request seeds, and are
            // spaced `sweep_points` apart so campaigns don't overlap
            // each other; repeating a campaign is the sweep hit path.
            let campaign = drawn;
            let base = pool + campaign * mix.sweep_points.max(1);
            let expect_miss = !std::mem::replace(&mut seen_campaign[campaign as usize], true);
            out.push(Request {
                line: format!(
                    "{{\"id\":{id},\"op\":\"sweep\",\"scenario\":\"{}\",\"seeds\":{},\"seed\":{base},\"trials\":{},\"points\":{}}}",
                    mix.scenario, mix.sweep_points.max(1), mix.trials, mix.points
                ),
                expect_miss,
                sweep: true,
            });
            continue;
        }
        let expect_miss = !std::mem::replace(&mut seen[seed as usize], true);
        let is_run = op_draw % (100 - mix.sweep_percent).max(1) < mix.run_percent;
        let line = if is_run {
            format!(
                "{{\"id\":{id},\"op\":\"run\",\"scenario\":\"{}\",\"seed\":{seed},\"trials\":{},\"points\":{}}}",
                mix.scenario, mix.trials, mix.points
            )
        } else {
            let (lo, hi) = mix.x_range;
            // 3 decimal places keeps the line short and the value exact
            // to re-generate.
            let x = (lo * 1000.0 + rng.f64() * (hi - lo) * 1000.0).round() / 1000.0;
            let x = x.clamp(lo, hi);
            format!(
                "{{\"id\":{id},\"op\":\"query\",\"scenario\":\"{}\",\"seed\":{seed},\"trials\":{},\"points\":{},\"x\":{x}}}",
                mix.scenario, mix.trials, mix.points
            )
        };
        out.push(Request {
            line,
            expect_miss,
            sweep: false,
        });
    }
    out
}

/// Aggregate results of one load-generation run; the serving section of
/// `BENCH_report.json` is written from these numbers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServingSummary {
    /// Hit-path (repeat-request) latency quantiles, µs.
    pub hit_p50_us: u64,
    /// Hit-path p99, µs.
    pub hit_p99_us: u64,
    /// Miss-path (first-request-per-spec) latency quantiles, µs.
    pub miss_p50_us: u64,
    /// Miss-path p99, µs.
    pub miss_p99_us: u64,
    /// Completed requests per wall-clock second over the whole run.
    pub jobs_per_sec: f64,
    /// Completed `sweep` requests per wall-clock second.
    pub sweep_jobs_per_sec: f64,
    /// Resolved grid points per wall-clock second: every point request
    /// counts 1, every sweep counts its streamed point lines.
    pub points_per_sec: f64,
    /// The daemon's authoritative resolution hit ratio (from `status`).
    pub cache_hit_ratio: f64,
    /// On-disk cache entries after the run (from `status`).
    pub cache_entries: u64,
    /// On-disk cache bytes after the run (from `status`).
    pub cache_bytes: u64,
    /// Requests completed.
    pub requests: u64,
    /// `sweep` requests completed.
    pub sweep_jobs: u64,
    /// Point lines streamed back by completed sweeps.
    pub sweep_points: u64,
    /// Requests that got an `"ok":true` response.
    pub ok: u64,
    /// Requests rejected with `queue_full` (open-loop overload).
    pub rejected: u64,
}

/// Per-thread latency tallies, merged after the drive loop. Buckets are
/// [`obs::HistogramStat`]-compatible log₂ buckets over microseconds —
/// the loadgen deliberately does **not** record into the global obs
/// log, which the daemon's executors drain concurrently.
struct Tally {
    hit_us: [u64; 65],
    miss_us: [u64; 65],
    ok: u64,
    rejected: u64,
    sweeps: u64,
    sweep_points: u64,
}

impl Tally {
    fn new() -> Tally {
        Tally {
            hit_us: [0; 65],
            miss_us: [0; 65],
            ok: 0,
            rejected: 0,
            sweeps: 0,
            sweep_points: 0,
        }
    }

    fn bucket(&mut self, expect_miss: bool, us: u64) {
        let idx = if us == 0 {
            0
        } else {
            64 - us.leading_zeros() as usize
        };
        if expect_miss {
            self.miss_us[idx] += 1;
        } else {
            self.hit_us[idx] += 1;
        }
    }

    fn record(&mut self, expect_miss: bool, us: u64, response: &str) {
        self.bucket(expect_miss, us);
        if response.contains("\"ok\":true") {
            self.ok += 1;
        } else if response.contains("queue_full") {
            self.rejected += 1;
        }
    }

    /// Records one completed sweep stream: the request's verdict is its
    /// *terminating* line (the summary, or a whole-request error).
    fn record_sweep(&mut self, expect_miss: bool, us: u64, points: usize, response: &str) {
        self.bucket(expect_miss, us);
        self.sweeps += 1;
        self.sweep_points += points as u64;
        let last = response.rsplit('\n').next().unwrap_or("");
        if last.contains("\"ok\":true") {
            self.ok += 1;
        } else if response.contains("queue_full") {
            self.rejected += 1;
        }
    }

    fn merge(&mut self, other: &Tally) {
        for i in 0..65 {
            self.hit_us[i] += other.hit_us[i];
            self.miss_us[i] += other.miss_us[i];
        }
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.sweeps += other.sweeps;
        self.sweep_points += other.sweep_points;
    }
}

/// Drives `requests` through the daemon closed-loop over
/// `connect()`-produced connections: requests are dealt round-robin,
/// each connection sending its next as soon as the previous response
/// lands. Ends with one `status` round trip for the daemon's
/// authoritative cache numbers.
pub fn closed_loop(
    connect: &(dyn Fn() -> io::Result<Client> + Sync),
    connections: usize,
    requests: &[Request],
) -> io::Result<ServingSummary> {
    let connections = connections.clamp(1, requests.len().max(1));
    let started = Instant::now();
    let mut tally = Tally::new();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut workers = Vec::new();
        for c in 0..connections {
            let mut client = connect()?;
            workers.push(scope.spawn(move || -> io::Result<Tally> {
                let mut local = Tally::new();
                let mut response = String::new();
                for req in requests.iter().skip(c).step_by(connections) {
                    response.clear();
                    let sent = Instant::now();
                    if req.sweep {
                        let points = client.sweep_into(&req.line, &mut response)?;
                        let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        local.record_sweep(req.expect_miss, us, points, &response);
                    } else {
                        client.roundtrip_into(&req.line, &mut response)?;
                        let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        local.record(req.expect_miss, us, &response);
                    }
                }
                Ok(local)
            }));
        }
        for w in workers {
            let local = w.join().expect("loadgen worker panicked")?;
            tally.merge(&local);
        }
        Ok(())
    })?;
    let wall = started.elapsed().as_secs_f64();
    summarize(connect, requests.len() as u64, wall, &tally)
}

/// Drives `requests` open-loop at `rate_per_sec`: request *i* is sent
/// at `i / rate` regardless of completions (one paced connection per
/// `connections` slot, FIFO response matching per connection). Under
/// overload the admission queue fills and rejects — the rejects are
/// counted, not retried.
pub fn open_loop(
    connect: &(dyn Fn() -> io::Result<Client> + Sync),
    connections: usize,
    requests: &[Request],
    rate_per_sec: f64,
) -> io::Result<ServingSummary> {
    let connections = connections.clamp(1, requests.len().max(1));
    let interval = Duration::from_secs_f64(1.0 / rate_per_sec.max(1.0));
    let started = Instant::now();
    let mut tally = Tally::new();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut workers = Vec::new();
        for c in 0..connections {
            let mut client = connect()?;
            let base = started;
            workers.push(scope.spawn(move || -> io::Result<Tally> {
                let mut local = Tally::new();
                let mut response = String::new();
                for (slot, req) in requests.iter().enumerate().skip(c).step_by(connections) {
                    let due = base + interval * slot as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    // The schedule clock keeps ticking while we wait for
                    // the response: latency is measured from the
                    // *intended* send time, so queueing delay shows up.
                    response.clear();
                    if req.sweep {
                        let points = client.sweep_into(&req.line, &mut response)?;
                        let us = due.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        local.record_sweep(req.expect_miss, us, points, &response);
                    } else {
                        client.roundtrip_into(&req.line, &mut response)?;
                        let us = due.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        local.record(req.expect_miss, us, &response);
                    }
                }
                Ok(local)
            }));
        }
        for w in workers {
            let local = w.join().expect("loadgen worker panicked")?;
            tally.merge(&local);
        }
        Ok(())
    })?;
    let wall = started.elapsed().as_secs_f64();
    summarize(connect, requests.len() as u64, wall, &tally)
}

/// Folds the tallies plus one final `status` round trip into the
/// summary.
fn summarize(
    connect: &dyn Fn() -> io::Result<Client>,
    requests: u64,
    wall_secs: f64,
    tally: &Tally,
) -> io::Result<ServingSummary> {
    let hit = obs::HistogramStat::from_counts("loadgen.hit_us", &tally.hit_us);
    let miss = obs::HistogramStat::from_counts("loadgen.miss_us", &tally.miss_us);
    let mut status_client = connect()?;
    let status = status_client.roundtrip("{\"id\":0,\"op\":\"status\"}")?;
    let dom = parse_json(&status)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad status: {e}")))?;
    let num = |key: &str| dom.get(key).and_then(Json::as_num).unwrap_or(0.0);
    let per_sec = |count: u64| {
        if wall_secs > 0.0 {
            count as f64 / wall_secs
        } else {
            0.0
        }
    };
    // Points resolved: every point request is one, every sweep its
    // streamed point-line count.
    let points = requests - tally.sweeps + tally.sweep_points;
    Ok(ServingSummary {
        hit_p50_us: hit.p50(),
        hit_p99_us: hit.p99(),
        miss_p50_us: miss.p50(),
        miss_p99_us: miss.p99(),
        jobs_per_sec: per_sec(requests),
        sweep_jobs_per_sec: per_sec(tally.sweeps),
        points_per_sec: per_sec(points),
        cache_hit_ratio: num("cache_hit_ratio"),
        cache_entries: num("cache_entries") as u64,
        cache_bytes: num("cache_bytes") as u64,
        requests,
        sweep_jobs: tally.sweeps,
        sweep_points: tally.sweep_points,
        ok: tally.ok,
        rejected: tally.rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_marks_first_seed_use_as_miss() {
        let mix = Mix::quick();
        let a = generate(&mix, 40, 0xFEED);
        let b = generate(&mix, 40, 0xFEED);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.expect_miss, y.expect_miss);
        }
        let misses = a.iter().filter(|r| r.expect_miss).count() as u64;
        assert!(misses <= mix.seed_pool);
        assert!(misses >= 1);
        // A different root seed perturbs the stream.
        let c = generate(&mix, 40, 0xBEEF);
        assert!(a.iter().zip(&c).any(|(x, y)| x.line != y.line));
        // Every line is one valid flat JSON object naming the scenario.
        for r in &a {
            let dom = parse_json(&r.line).expect("request line parses");
            assert_eq!(
                dom.get("scenario").and_then(Json::as_str),
                Some(mix.scenario.as_str())
            );
        }
    }

    #[test]
    fn short_runs_still_contain_a_guaranteed_miss_and_hit() {
        // Satellite fix: even `--requests 2` (below the seed-pool size)
        // must produce one guaranteed miss and one guaranteed hit, so
        // hit-ratio checks on small smoke runs can't be flaky.
        let mix = Mix::quick();
        for n in 2..8 {
            let reqs = generate(&mix, n, 0x5EED);
            assert!(
                reqs[0].expect_miss,
                "n={n}: request 0 is the first seed use"
            );
            assert!(
                !reqs[1].expect_miss,
                "n={n}: request 1 repeats request 0's seed"
            );
            assert!(reqs[0].line.contains("\"seed\":0"), "{}", reqs[0].line);
            assert!(reqs[1].line.contains("\"seed\":0"), "{}", reqs[1].line);
        }
    }

    #[test]
    fn sweep_heavy_mix_interleaves_campaigns_disjoint_from_point_seeds() {
        let mix = Mix::sweep_heavy();
        let reqs = generate(&mix, 64, 0xFEED);
        let sweeps: Vec<_> = reqs.iter().filter(|r| r.sweep).collect();
        assert!(!sweeps.is_empty(), "half the mix should be sweeps");
        assert!(reqs.iter().any(|r| !r.sweep), "point ops survive");
        assert!(
            !reqs[0].sweep && !reqs[1].sweep,
            "miss/hit pair stays point-shaped"
        );
        let mut seen_base = std::collections::HashSet::new();
        for r in &sweeps {
            let dom = parse_json(&r.line).expect("sweep line parses");
            assert_eq!(dom.get("op").and_then(Json::as_str), Some("sweep"));
            assert_eq!(
                dom.get("seeds").and_then(Json::as_num),
                Some(mix.sweep_points as f64)
            );
            // Campaign bases sit above the point-seed pool so grids
            // never collide with point requests.
            let base = dom.get("seed").and_then(Json::as_num).unwrap() as u64;
            assert!(base >= mix.seed_pool, "campaign base {base} under pool");
            assert_eq!((base - mix.seed_pool) % mix.sweep_points, 0);
            // First use of a campaign is the miss sample; repeats hit.
            assert_eq!(r.expect_miss, seen_base.insert(base), "{}", r.line);
        }
        // Replays are byte-identical.
        let again = generate(&mix, 64, 0xFEED);
        for (a, b) in reqs.iter().zip(&again) {
            assert_eq!(a.line, b.line);
        }
    }

    #[test]
    fn tally_quantiles_split_hit_and_miss_paths() {
        let mut t = Tally::new();
        for _ in 0..99 {
            t.record(false, 4, "{\"ok\":true}");
        }
        t.record(true, 4096, "{\"ok\":true}");
        let hit = obs::HistogramStat::from_counts("hit", &t.hit_us);
        let miss = obs::HistogramStat::from_counts("miss", &t.miss_us);
        assert_eq!(hit.p99(), 4);
        assert_eq!(miss.p50(), 4096);
        assert_eq!(t.ok, 100);
    }
}
