//! # mmtag-bench — the experiment harness
//!
//! One function per experiment in `DESIGN.md`'s per-experiment index; each
//! returns a [`mmtag_sim::experiment::Table`] so the figure binaries print
//! it and the smoke tests assert its headline numbers. Binaries live in
//! `src/bin/` (`cargo run -p mmtag-bench --bin fig7_link_budget`);
//! performance benches in `benches/` run on the in-house [`timing`]
//! harness (`cargo bench -p mmtag-bench`), and `--bin bench_report`
//! writes the serial-vs-parallel speedup summary to `BENCH_report.json`.
//!
//! | experiment | paper artifact | function |
//! |---|---|---|
//! | E1 | Fig. 6 | [`eval::fig6_s11`] |
//! | E2 | Fig. 7 | [`eval::fig7_link_budget`] |
//! | E3 | §5.2 retrodirectivity | [`antenna_figs::fig_retro`] |
//! | E4 | §1/§3 comparison | [`system_tables::table_comparison`] |
//! | E5 | §8 BER assumption | [`phy_figs::fig_ber`] |
//! | E6 | §7 beamwidth | [`antenna_figs::fig_beamwidth`] |
//! | E7 | §9 MAC | [`network_figs::fig_aloha`] |
//! | E8 | §1 mobility | [`network_figs::fig_mobility`] |
//! | E9 | §9 self-interference | [`system_tables::fig_selfint`] |
//! | E10 | §1 batteryless | [`system_tables::table_power`] |
//! | E11 | §7 footnote 3 | [`system_tables::fig_60ghz`] |
//! | E12 | §4 NLOS | [`network_figs::fig_nlos`] |
//! | E13–E22 | extensions/ablations | [`extensions`] |
//! | E23–E26 | ISI / Gen2 / localization / SI cancellation | [`advanced`] |
//!
//! Every experiment is also registered as a named scenario in
//! [`scenarios::registry`] — `cargo run -p mmtag-bench --bin scenario --
//! list` enumerates them, and each runs through the typed
//! [`mmtag_sim::scenario`] pipeline (spec → [`mmtag_sim::scenario::Runner`]
//! → [`mmtag_sim::scenario::RunRecord`] with a reproducibility manifest).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced;
pub mod antenna_figs;
pub mod city_figs;
pub mod eval;
pub mod extensions;
pub mod loadgen;
pub mod network_figs;
pub mod phy_figs;
pub mod rate_figs;
pub mod report;
pub mod scenarios;
pub mod system_tables;
pub mod timing;
