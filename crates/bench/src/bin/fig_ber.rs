//! E5: BER vs Eb/N0 — closed-form theory and the measured waveform chain.
fn main() {
    mmtag_bench::scenarios::print_scenario("e05-ber");
    println!("paper (§8): \"ASK modulation requires SNR of 7 dB to achieve BER of 10⁻³\"");
}
