//! E5: BER vs Eb/N0 — closed-form theory and the measured waveform chain.
fn main() {
    println!("{}", mmtag_bench::phy_figs::fig_ber(200_000, 2024).render());
    println!("{}", mmtag_bench::phy_figs::table_required_snr().render());
    println!("paper (§8): \"ASK modulation requires SNR of 7 dB to achieve BER of 10⁻³\"");
}
