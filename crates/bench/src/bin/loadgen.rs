//! `loadgen` — drive an `mmtag serve` daemon with a deterministic
//! request mix and print hit/miss latency quantiles.
//!
//! ```text
//! loadgen (--socket <path> | --tcp <host:port>) [flags]
//!   --requests N      request count                (default 160)
//!   --connections N   concurrent connections       (default 1)
//!   --open-rate R     open-loop arrivals/sec (omit = closed loop)
//!   --scenario NAME   registry scenario            (default e05-ber)
//!   --seed-pool K     distinct seeds in the mix    (default 8)
//!   --trials N        per-request trials override  (default 20000)
//!   --points N        per-request points override  (default 8)
//!   --run-percent P   fraction of run ops          (default 20)
//!   --seed S          mix root seed                (default 0x5EED)
//!   --shutdown        send a shutdown op when done
//! ```
//!
//! The mix is a pure function of its flags: the same invocation always
//! sends the same request log (see [`mmtag_bench::loadgen::generate`]),
//! which is what makes daemon responses replay-comparable.

use mmtag_bench::loadgen::{closed_loop, generate, open_loop, Mix, ServingSummary};
use mmtag_sim::serve::Client;
use std::io;
use std::process::ExitCode;

struct Flags {
    socket: Option<String>,
    tcp: Option<String>,
    requests: usize,
    connections: usize,
    open_rate: Option<f64>,
    mix: Mix,
    seed: u64,
    shutdown: bool,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        socket: None,
        tcp: None,
        requests: 160,
        connections: 1,
        open_rate: None,
        mix: Mix::quick(),
        seed: 0x5EED,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("--{flag} needs a value"));
        match arg.as_str() {
            "--socket" => flags.socket = Some(value("socket")?),
            "--tcp" => flags.tcp = Some(value("tcp")?),
            "--requests" => flags.requests = parse(&value("requests")?)?,
            "--connections" => flags.connections = parse(&value("connections")?)?,
            "--open-rate" => flags.open_rate = Some(parse(&value("open-rate")?)?),
            "--scenario" => flags.mix.scenario = value("scenario")?,
            "--seed-pool" => flags.mix.seed_pool = parse(&value("seed-pool")?)?,
            "--trials" => flags.mix.trials = parse(&value("trials")?)?,
            "--points" => flags.mix.points = parse(&value("points")?)?,
            "--run-percent" => flags.mix.run_percent = parse(&value("run-percent")?)?,
            "--seed" => flags.seed = parse(&value("seed")?)?,
            "--shutdown" => flags.shutdown = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if flags.socket.is_none() && flags.tcp.is_none() {
        return Err("need --socket <path> or --tcp <host:port>".into());
    }
    Ok(flags)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("cannot parse '{raw}'"))
}

fn print_summary(mode: &str, s: &ServingSummary) {
    println!(
        "loadgen ({mode}): {} requests, {} ok, {} rejected",
        s.requests, s.ok, s.rejected
    );
    println!(
        "  hit   p50 {:>8} us   p99 {:>8} us",
        s.hit_p50_us, s.hit_p99_us
    );
    println!(
        "  miss  p50 {:>8} us   p99 {:>8} us",
        s.miss_p50_us, s.miss_p99_us
    );
    println!(
        "  {:.1} jobs/s, cache hit ratio {:.3}, {} cache entries ({} bytes)",
        s.jobs_per_sec, s.cache_hit_ratio, s.cache_entries, s.cache_bytes
    );
}

fn run() -> Result<(), String> {
    let flags = parse_flags()?;
    let connect: Box<dyn Fn() -> io::Result<Client> + Sync> = match (&flags.socket, &flags.tcp) {
        (Some(path), _) => {
            let path = path.clone();
            Box::new(move || Client::connect_unix(&path))
        }
        (None, Some(addr)) => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|_| format!("cannot parse tcp address '{addr}'"))?;
            Box::new(move || Client::connect_tcp(addr))
        }
        (None, None) => unreachable!("parse_flags requires a target"),
    };
    let requests = generate(&flags.mix, flags.requests, flags.seed);
    let result = match flags.open_rate {
        None => closed_loop(&*connect, flags.connections, &requests),
        Some(rate) => open_loop(&*connect, flags.connections, &requests, rate),
    };
    let summary = result.map_err(|e| format!("drive loop failed: {e}"))?;
    print_summary(
        if flags.open_rate.is_some() {
            "open-loop"
        } else {
            "closed-loop"
        },
        &summary,
    );
    if flags.shutdown {
        let mut client = connect().map_err(|e| format!("shutdown connect failed: {e}"))?;
        let bye = client
            .roundtrip("{\"id\":0,\"op\":\"shutdown\"}")
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("  shutdown: {bye}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
