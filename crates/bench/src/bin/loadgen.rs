//! `loadgen` — drive an `mmtag serve` daemon with a deterministic
//! request mix and print hit/miss latency quantiles.
//!
//! ```text
//! loadgen (--socket <path> | --tcp <host:port> | --executors N) [flags]
//!   --requests N      request count                (default 160)
//!   --connections N   concurrent connections       (default 1)
//!   --open-rate R     open-loop arrivals/sec (omit = closed loop)
//!   --scenario NAME   registry scenario            (default e05-ber)
//!   --seed-pool K     distinct seeds in the mix    (default 8)
//!   --trials N        per-request trials override  (default 20000)
//!   --points N        per-request points override  (default 8)
//!   --run-percent P   fraction of run ops          (default 20)
//!   --sweep-percent P fraction of sweep ops        (default 0)
//!   --sweep-points K  grid size per sweep request  (default 16)
//!   --seed S          mix root seed                (default 0x5EED)
//!   --one-sweep K     send ONE K-point sweep and print the raw
//!                     response stream (smoke tests), then exit
//!   --executors N     self-contained scaling mode: start in-process
//!                     daemons at 1 and N executors on fresh caches,
//!                     drive the same mix at both, print the ratio
//!   --shutdown        send a shutdown op when done
//! ```
//!
//! The mix is a pure function of its flags: the same invocation always
//! sends the same request log (see [`mmtag_bench::loadgen::generate`]),
//! which is what makes daemon responses replay-comparable.

use mmtag_bench::loadgen::{closed_loop, generate, open_loop, Mix, ServingSummary};
use mmtag_sim::cache::RunCache;
use mmtag_sim::serve::{Client, EngineConfig, Server};
use std::io;
use std::process::ExitCode;

struct Flags {
    socket: Option<String>,
    tcp: Option<String>,
    requests: usize,
    connections: usize,
    open_rate: Option<f64>,
    mix: Mix,
    seed: u64,
    one_sweep: Option<u64>,
    executors: Option<usize>,
    shutdown: bool,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        socket: None,
        tcp: None,
        requests: 160,
        connections: 1,
        open_rate: None,
        mix: Mix::quick(),
        seed: 0x5EED,
        one_sweep: None,
        executors: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("--{flag} needs a value"));
        match arg.as_str() {
            "--socket" => flags.socket = Some(value("socket")?),
            "--tcp" => flags.tcp = Some(value("tcp")?),
            "--requests" => flags.requests = parse(&value("requests")?)?,
            "--connections" => flags.connections = parse(&value("connections")?)?,
            "--open-rate" => flags.open_rate = Some(parse(&value("open-rate")?)?),
            "--scenario" => flags.mix.scenario = value("scenario")?,
            "--seed-pool" => flags.mix.seed_pool = parse(&value("seed-pool")?)?,
            "--trials" => flags.mix.trials = parse(&value("trials")?)?,
            "--points" => flags.mix.points = parse(&value("points")?)?,
            "--run-percent" => flags.mix.run_percent = parse(&value("run-percent")?)?,
            "--sweep-percent" => flags.mix.sweep_percent = parse(&value("sweep-percent")?)?,
            "--sweep-points" => flags.mix.sweep_points = parse(&value("sweep-points")?)?,
            "--seed" => flags.seed = parse(&value("seed")?)?,
            "--one-sweep" => flags.one_sweep = Some(parse(&value("one-sweep")?)?),
            "--executors" => flags.executors = Some(parse(&value("executors")?)?),
            "--shutdown" => flags.shutdown = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if flags.socket.is_none() && flags.tcp.is_none() && flags.executors.is_none() {
        return Err("need --socket <path>, --tcp <host:port>, or --executors N".into());
    }
    Ok(flags)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("cannot parse '{raw}'"))
}

fn print_summary(mode: &str, s: &ServingSummary) {
    println!(
        "loadgen ({mode}): {} requests, {} ok, {} rejected",
        s.requests, s.ok, s.rejected
    );
    println!(
        "  hit   p50 {:>8} us   p99 {:>8} us",
        s.hit_p50_us, s.hit_p99_us
    );
    println!(
        "  miss  p50 {:>8} us   p99 {:>8} us",
        s.miss_p50_us, s.miss_p99_us
    );
    println!(
        "  {:.1} jobs/s, cache hit ratio {:.3}, {} cache entries ({} bytes)",
        s.jobs_per_sec, s.cache_hit_ratio, s.cache_entries, s.cache_bytes
    );
    if s.sweep_jobs > 0 {
        println!(
            "  sweeps: {} jobs ({} points), {:.1} sweep jobs/s, {:.1} points/s",
            s.sweep_jobs, s.sweep_points, s.sweep_jobs_per_sec, s.points_per_sec
        );
    }
}

/// `--executors N`: starts in-process daemons at 1 and `n` executors
/// (fresh cache each, same request log), drives both closed-loop, and
/// prints the jobs/s ratio — the multi-core serving scaling check.
fn executors_scaling(flags: &Flags, n: usize) -> Result<(), String> {
    let n = n.max(1);
    let requests = generate(&flags.mix, flags.requests, flags.seed);
    let connections = flags.connections.max(n);
    let mut jobs_per_sec = Vec::new();
    for executors in [1, n] {
        let cache_dir = std::env::temp_dir().join(format!(
            "mmtag-loadgen-scale-{}-e{executors}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let server = Server::builder(mmtag_bench::scenarios::registry())
            .tcp("127.0.0.1:0")
            .cache(RunCache::at(&cache_dir))
            .config(EngineConfig {
                executors,
                job_threads: 1,
                queue_capacity: requests.len().max(64),
                memory_capacity: 256,
            })
            .start()
            .map_err(|e| format!("server start failed: {e}"))?;
        let addr = server.tcp_addr().expect("tcp listener configured");
        let summary = closed_loop(&move || Client::connect_tcp(addr), connections, &requests)
            .map_err(|e| format!("drive loop failed: {e}"))?;
        print_summary(&format!("executors={executors}"), &summary);
        jobs_per_sec.push(summary.jobs_per_sec);
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    let ratio = if jobs_per_sec[0] > 0.0 {
        jobs_per_sec[1] / jobs_per_sec[0]
    } else {
        0.0
    };
    println!("loadgen scaling: {n} executors vs 1 -> {ratio:.2}x jobs/s");
    Ok(())
}

/// `--one-sweep K`: sends a single K-point sweep and echoes the raw
/// response stream — check.sh smoke tests count the point lines and
/// byte-compare summaries across cache-cold/cache-hot runs.
fn one_sweep(
    connect: &dyn Fn() -> io::Result<Client>,
    flags: &Flags,
    seeds: u64,
) -> Result<(), String> {
    let mut client = connect().map_err(|e| format!("connect failed: {e}"))?;
    let request = format!(
        "{{\"id\":1,\"op\":\"sweep\",\"scenario\":\"{}\",\"seeds\":{seeds},\"seed\":{},\"trials\":{},\"points\":{}}}",
        flags.mix.scenario, flags.seed, flags.mix.trials, flags.mix.points
    );
    let mut response = String::new();
    let points = client
        .sweep_into(&request, &mut response)
        .map_err(|e| format!("sweep failed: {e}"))?;
    println!("{response}");
    eprintln!("loadgen: one-sweep streamed {points} point lines");
    Ok(())
}

fn run() -> Result<(), String> {
    let flags = parse_flags()?;
    if let Some(n) = flags.executors {
        return executors_scaling(&flags, n);
    }
    let connect: Box<dyn Fn() -> io::Result<Client> + Sync> = match (&flags.socket, &flags.tcp) {
        (Some(path), _) => {
            let path = path.clone();
            Box::new(move || Client::connect_unix(&path))
        }
        (None, Some(addr)) => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|_| format!("cannot parse tcp address '{addr}'"))?;
            Box::new(move || Client::connect_tcp(addr))
        }
        (None, None) => unreachable!("parse_flags requires a target"),
    };
    if let Some(seeds) = flags.one_sweep {
        one_sweep(&*connect, &flags, seeds)?;
    } else {
        let requests = generate(&flags.mix, flags.requests, flags.seed);
        let result = match flags.open_rate {
            None => closed_loop(&*connect, flags.connections, &requests),
            Some(rate) => open_loop(&*connect, flags.connections, &requests, rate),
        };
        let summary = result.map_err(|e| format!("drive loop failed: {e}"))?;
        print_summary(
            if flags.open_rate.is_some() {
                "open-loop"
            } else {
                "closed-loop"
            },
            &summary,
        );
    }
    if flags.shutdown {
        let mut client = connect().map_err(|e| format!("shutdown connect failed: {e}"))?;
        let bye = client
            .roundtrip("{\"id\":0,\"op\":\"shutdown\"}")
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("  shutdown: {bye}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
