//! E22: multi-beam (MIMO) inventory speedup.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_mimo(7).render());
}
