//! E22: multi-beam (MIMO) inventory speedup.
fn main() {
    mmtag_bench::scenarios::print_scenario("e22-mimo");
}
