//! The scenario front door: enumerate and run any registered experiment.
//!
//! ```text
//! cargo run -p mmtag-bench --bin scenario -- list
//! cargo run -p mmtag-bench --bin scenario -- run e02-link-budget
//! cargo run -p mmtag-bench --bin scenario -- run e05-ber --csv --quick
//! cargo run -p mmtag-bench --bin scenario -- smoke
//! ```

use mmtag_bench::scenarios::registry;
use mmtag_rf::obs;
use mmtag_sim::cache::RunCache;
use mmtag_sim::scenario::Runner;
use std::process::ExitCode;

const USAGE: &str = "usage: scenario <command>
  list                      print every registered scenario name and title
  run <name> [options]      run one scenario at its published defaults
      --json                emit the structured record as JSON
      --csv                 emit the tables as CSV (manifest as comments)
      --quick               clamp axes to 3 points and trials to 200
      --seed <n>            override the spec's root seed
      --threads <n>         pin the runner's thread budget
      --no-cache            skip the run cache (MMTAG_CACHE_DIR, default
                            target/mmtag-run-cache); tables are identical
                            either way, this only forces recomputation
      --trace <file>        record spans, write Chrome tracing JSON
                            (results are bit-identical with or without;
                            implies --no-cache so there is work to trace)
  smoke                     run every scenario at smoke size (CI gate)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let reg = registry();
            for s in reg.iter() {
                println!("{:18} {}", s.spec().name, s.spec().title);
            }
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("smoke") => smoke(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("scenario run: missing <name>\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let (mut json, mut csv, mut quick, mut no_cache) = (false, false, false, false);
    let (mut seed, mut threads) = (None, None);
    let mut trace: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--csv" => csv = true,
            "--quick" => quick = true,
            "--no-cache" => no_cache = true,
            "--seed" | "--threads" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("scenario run: {a} needs an integer value");
                    return ExitCode::FAILURE;
                };
                if a == "--seed" {
                    seed = Some(v);
                } else {
                    threads = Some(v as usize);
                }
            }
            "--trace" => {
                let Some(v) = it.next() else {
                    eprintln!("scenario run: --trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace = Some(v.clone());
            }
            other => {
                eprintln!("scenario run: unknown option '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let reg = registry();
    let Some(s) = reg.get(name) else {
        eprintln!("scenario run: '{name}' is not registered; try 'scenario list'");
        return ExitCode::FAILURE;
    };
    let mut runner = match threads {
        Some(n) => Runner::with_threads(n),
        None => Runner::new(),
    };
    // A traced run must actually execute — a cache hit has nothing to
    // trace — so --trace implies --no-cache.
    if !no_cache && trace.is_none() {
        runner = runner.with_cache(RunCache::at_default_dir());
    }
    let scenario = seed.map(|seed| s.with_spec(s.spec().clone().with_seed(seed)));
    let s = scenario.as_deref().unwrap_or(s);
    if trace.is_some() {
        obs::set_level(obs::Level::Trace);
    }
    let record = if quick {
        runner.run_minimized(s, 3, 200)
    } else {
        runner.run(s)
    };
    if let Some(path) = trace {
        obs::set_level(obs::Level::Off);
        if let Err(e) = std::fs::write(&path, obs::drain().to_chrome_json()) {
            eprintln!("scenario run: cannot write trace file '{path}': {e}");
            return ExitCode::FAILURE;
        }
    }
    if json {
        println!("{}", record.to_json());
    } else if csv {
        print!("{}", record.to_csv());
    } else {
        print!("{}", record.render());
    }
    ExitCode::SUCCESS
}

fn smoke() -> ExitCode {
    let reg = registry();
    let runner = Runner::new();
    for s in reg.iter() {
        let record = runner.run_minimized(s, 3, 200);
        assert!(
            !record.tables.is_empty(),
            "{} produced no tables",
            record.manifest.scenario
        );
        println!(
            "ok {:18} {:3} rows  {:8.1} ms",
            record.manifest.scenario,
            record.tables.iter().map(|t| t.len()).sum::<usize>(),
            record.manifest.wall_ms
        );
    }
    println!("smoke: all {} scenarios ran", reg.len());
    ExitCode::SUCCESS
}
