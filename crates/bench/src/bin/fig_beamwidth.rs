//! E6: tag beamwidth and retro gain vs element count (§7: 6 ⇒ ~20°).
fn main() {
    println!("{}", mmtag_bench::antenna_figs::fig_beamwidth().render());
    println!("paper (§7): 6 elements ⇒ ~20° beam; (§8): more elements ⇒ more range/rate.");
}
