//! E6: tag beamwidth and retro gain vs element count (§7: 6 ⇒ ~20°).
fn main() {
    mmtag_bench::scenarios::print_scenario("e06-beamwidth");
    println!("paper (§7): 6 elements ⇒ ~20° beam; (§8): more elements ⇒ more range/rate.");
}
