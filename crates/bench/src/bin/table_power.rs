//! E10: the power table behind the batteryless claim (§1).
fn main() {
    println!("{}", mmtag_bench::system_tables::table_power().render());
    println!("mmTag modulates at µW; active mmWave radios and phased arrays need W.");
}
