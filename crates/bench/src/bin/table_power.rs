//! E10: the power table behind the batteryless claim (§1).
fn main() {
    mmtag_bench::scenarios::print_scenario("e10-power");
    println!("mmTag modulates at µW; active mmWave radios and phased arrays need W.");
}
