//! E26: waveform-level SI cancellation.
fn main() {
    mmtag_bench::scenarios::print_scenario("e26-cancellation");
}
