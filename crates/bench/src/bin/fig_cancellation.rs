//! E26: waveform-level SI cancellation.
fn main() {
    println!("{}", mmtag_bench::advanced::fig_cancellation(100_000, 7).render());
}
