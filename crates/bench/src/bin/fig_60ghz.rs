//! E11: retuning to 60 GHz (§7 footnote 3).
fn main() {
    mmtag_bench::scenarios::print_scenario("e11-60ghz");
    println!("finding: O2 absorption is negligible at room scale; the λ² aperture loss");
    println!("is what costs range — and the tag shrinks by the same factor.");
}
