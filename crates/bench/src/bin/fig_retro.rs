//! E3: retrodirectivity — monostatic gain vs incidence, three wirings.
fn main() {
    mmtag_bench::scenarios::print_scenario("e03-retro");
    println!("claim (§5.2): Van Atta reflects toward the reader at any angle;");
    println!("the fixed-beam tag [18] works only near broadside; a mirror only at 0°.");
}
