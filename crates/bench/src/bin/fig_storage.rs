//! E18: capacitor-buffered burst operation.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_storage().render());
}
