//! E18: capacitor-buffered burst operation.
fn main() {
    mmtag_bench::scenarios::print_scenario("e18-storage");
}
