//! E7: multi-tag inventory — Aloha efficiency and SDM sectoring (§9).
fn main() {
    println!("{}", mmtag_bench::network_figs::fig_aloha(11).render());
    println!("bound: slotted-Aloha peak efficiency is 1/e ≈ 0.368 per contention domain.");
}
