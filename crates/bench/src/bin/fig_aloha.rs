//! E7: multi-tag inventory — Aloha efficiency and SDM sectoring (§9).
fn main() {
    mmtag_bench::scenarios::print_scenario("e07-aloha");
    println!("bound: slotted-Aloha peak efficiency is 1/e ≈ 0.368 per contention domain.");
}
