//! E21: the capture effect on framed Aloha.
fn main() {
    mmtag_bench::scenarios::print_scenario("e21-capture");
}
