//! E21: the capture effect on framed Aloha.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_capture(1000, 4).render());
}
