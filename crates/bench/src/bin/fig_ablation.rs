//! E14: fabrication ablation — line phase errors and element failures.
fn main() {
    mmtag_bench::scenarios::print_scenario("e14-ablation");
}
