//! E14: fabrication ablation — line phase errors and element failures.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_ablation().render());
}
