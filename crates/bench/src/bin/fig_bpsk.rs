//! E16: BPSK backscatter vs OOK, measured BER.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_bpsk(200_000, 5).render());
}
