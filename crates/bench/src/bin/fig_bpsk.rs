//! E16: BPSK backscatter vs OOK, measured BER.
fn main() {
    mmtag_bench::scenarios::print_scenario("e16-bpsk");
}
