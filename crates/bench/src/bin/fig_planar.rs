//! E17: planar vs linear Van Atta arrays.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_planar().render());
}
