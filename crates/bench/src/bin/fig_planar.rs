//! E17: planar vs linear Van Atta arrays.
fn main() {
    mmtag_bench::scenarios::print_scenario("e17-planar");
}
