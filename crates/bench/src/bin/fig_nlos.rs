//! E12: NLOS fallback when the LOS path is blocked (§4).
fn main() {
    mmtag_bench::scenarios::print_scenario("e12-nlos");
    println!("claim (§4): \"when the LOS path is blocked, the tag and the reader");
    println!("chooses an NLOS path to communicate.\"");
}
