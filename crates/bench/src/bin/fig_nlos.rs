//! E12: NLOS fallback when the LOS path is blocked (§4).
fn main() {
    println!("{}", mmtag_bench::network_figs::fig_nlos().render());
    println!("claim (§4): \"when the LOS path is blocked, the tag and the reader");
    println!("chooses an NLOS path to communicate.\"");
}
