//! E13: OOK spectrum occupancy — the B/2 rule, measured.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_spectrum(7).render());
}
