//! E13: OOK spectrum occupancy — the B/2 rule, measured.
fn main() {
    mmtag_bench::scenarios::print_scenario("e13-spectrum");
}
