//! The perf-trajectory report for the Monte-Carlo engine.
//!
//! Three kinds of rows, all asserted bit-identical where the determinism
//! contract applies, written to `BENCH_report.json` under the core-aware
//! schema of [`mmtag_bench::report`]:
//!
//! * **serial → parallel** speedups of the engine hot paths (single-point
//!   BER, an 8-point BER sweep, an Aloha inventory ensemble) — PR 1's
//!   headline numbers, at *pinned* thread counts (1 and 4). A pinned
//!   count the host cannot physically run in parallel (fewer cores than
//!   threads) is **skipped**: bit-identity is still asserted, but the
//!   timing row becomes `null` with a reason in `skipped` — a time-sliced
//!   "speedup" is a measurement of the scheduler, not the pool;
//! * **old-kernel → batch-kernel** speedups at one thread — PR 3's
//!   headline, kept for the trajectory: sampler-v1 allocating chains vs
//!   the zero-allocation scratch kernels;
//! * **batch-kernel → lane-kernel** speedups at one thread — this PR's
//!   headline (`*_lanes_vs_batch`, `fft1024_radix4_vs_radix2`): the PR 3
//!   batch kernels vs the fixed-width SoA rewrites (fused Box–Muller
//!   pipeline, lane-accumulator BER/outage counters, radix-4 FFT). These
//!   rows are **gated**: `--verify` fails if any slips below 0.9×
//!   (see [`mmtag_bench::report::verify_report`]);
//! * **city-engine** rows — this PR's headline: the sharded
//!   calendar-queue DES against the heap-scheduler reference on a
//!   10⁵–10⁶-tag city (`city_calendar_vs_heap_des`, gated at the same
//!   0.9 floor), its `par{t}` pool rows, and the `throughput` block
//!   (`*_tags_per_sec`, `*_events_per_sec`) `--verify` requires.
//!
//! Modes: no args = full-fidelity run; `--quick` = small timing rounds so
//! `scripts/check.sh` can regenerate and validate the report on every
//! check in seconds; `--verify` = don't benchmark at all, just require
//! that `BENCH_report.json` exists, parses, and passes the schema gate
//! (exit 1 otherwise).

use mmtag_bench::report::{verify_report, Report};
use mmtag_bench::timing::{bench_with, format_result, BenchResult};
use mmtag_channel::fading::{FadeScratch, RicianFading};
use mmtag_mac::aloha::{
    inventory_ensemble_par_with, inventory_until_drained, inventory_until_drained_scratch,
    AlohaScratch, QAlgorithm,
};
use mmtag_mac::city::{CityConfig, CityEngine};
use mmtag_phy::waveform::{
    ber_sweep_par_with, count_bit_errors_reference, count_bit_errors_scratch,
    count_bit_errors_scratch_batch, measure_ber_par_with, Awgn, OokModem, TrialScratch,
    MC_CHUNK_BITS,
};
use mmtag_rf::complex::Complex;
use mmtag_rf::fft::FftPlan;
use mmtag_rf::obs;
use mmtag_rf::rng::{Rng, SeedTree};
use mmtag_rf::units::Db;

const BER_BITS: usize = 100_000;
/// Pinned thread counts for the serial-vs-parallel rows: 1 (pool
/// bypassed, measures dispatch overhead) and 4 (the speedup headline).
const PAR_THREADS: [usize; 2] = [1, 4];
const BER_SNRS: [f64; 8] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
const TAGS: usize = 128;
const REPS: usize = 16;
const OUTAGE_TRIALS: usize = 100_000;
const FILL_SAMPLES: usize = 65_536;
const FFT_N: usize = 1024;

const REPORT: &str = "BENCH_report.json";

fn verify() -> ! {
    match std::fs::read_to_string(REPORT) {
        Err(e) => {
            eprintln!("bench_report --verify: cannot read {REPORT}: {e}");
            std::process::exit(1);
        }
        Ok(text) => match verify_report(&text) {
            Err(e) => {
                eprintln!("bench_report --verify: {REPORT} fails the schema gate: {e}");
                std::process::exit(1);
            }
            Ok(()) => {
                println!("{REPORT}: schema gate passed ({} bytes)", text.len());
                std::process::exit(0);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--verify") {
        verify();
    }
    let quick = args.iter().any(|a| a == "--quick");
    // Quick mode: ~6 ms rounds, 2 rounds — noisy numbers, same pipeline.
    let (target, rounds) = if quick {
        (6_000_000, 2)
    } else {
        (80_000_000, 5)
    };
    let bench = |name: &str, f: &mut dyn FnMut() -> f64| -> BenchResult {
        bench_with(name, target, rounds, f)
    };

    let threads = mmtag_rf::par::thread_limit();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tree = SeedTree::new(0xBE9C);
    let modem = OokModem::new(4);
    let mut results: Vec<BenchResult> = Vec::new();
    let mut speedups: Vec<(String, Option<f64>)> = Vec::new();
    let mut skipped: Vec<(String, String)> = Vec::new();
    let mut scaling: Vec<(String, f64)> = Vec::new();
    let mut ns_per_bit: Vec<(String, f64)> = Vec::new();
    let mut throughput: Vec<(String, f64)> = Vec::new();

    let pair = |name: &str,
                results: &mut Vec<BenchResult>,
                speedups: &mut Vec<(String, Option<f64>)>,
                baseline: BenchResult,
                improved: BenchResult| {
        speedups.push((name.to_string(), Some(improved.speedup_over(&baseline))));
        results.push(baseline);
        results.push(improved);
    };

    // ---- old kernel vs batch kernel vs lane kernel, all serial ----
    //
    // Three generations of the same BER computation over the same chunk
    // decomposition: the sampler-v1 allocating chain (PR 1), the
    // zero-allocation AoS batch kernel (PR 3, kept as
    // `count_bit_errors_scratch_batch`), and the fixed-width SoA lane
    // kernel that replaced it in the hot loops (this PR). All three are
    // bit-identical in their error counts.
    let chunk_errors_old = || {
        let mut total = 0u64;
        let chunks = BER_BITS.div_ceil(MC_CHUNK_BITS);
        for ci in 0..chunks {
            let n = MC_CHUNK_BITS.min(BER_BITS - ci * MC_CHUNK_BITS);
            let mut rng = tree.rng_indexed("ber-chunk", ci as u64);
            total += count_bit_errors_reference(&modem, 7.0, n, true, &mut rng) as u64;
        }
        total as f64 / BER_BITS as f64
    };
    let chunk_errors_batch = || {
        let awgn = Awgn::for_eb_n0(&modem, 7.0);
        let mut scratch = TrialScratch::new();
        let mut total = 0u64;
        let chunks = BER_BITS.div_ceil(MC_CHUNK_BITS);
        for ci in 0..chunks {
            let n = MC_CHUNK_BITS.min(BER_BITS - ci * MC_CHUNK_BITS);
            let mut rng = tree.rng_indexed("ber-chunk", ci as u64);
            total += count_bit_errors_scratch_batch(&modem, &awgn, n, true, &mut rng, &mut scratch)
                as u64;
        }
        total as f64 / BER_BITS as f64
    };
    let mut chunk_errors_lanes = || {
        let awgn = Awgn::for_eb_n0(&modem, 7.0);
        let mut scratch = TrialScratch::new();
        let mut total = 0u64;
        let chunks = BER_BITS.div_ceil(MC_CHUNK_BITS);
        for ci in 0..chunks {
            let n = MC_CHUNK_BITS.min(BER_BITS - ci * MC_CHUNK_BITS);
            let mut rng = tree.rng_indexed("ber-chunk", ci as u64);
            total +=
                count_bit_errors_scratch(&modem, &awgn, n, true, &mut rng, &mut scratch) as u64;
        }
        total as f64 / BER_BITS as f64
    };
    let s = bench("ber_kernel_scalar_100kbit", &mut { chunk_errors_old });
    let b = bench("ber_kernel_batch_100kbit", &mut { chunk_errors_batch });
    let l = bench("ber_kernel_lanes_100kbit", &mut chunk_errors_lanes);
    let lanes_untraced = l.clone();
    ns_per_bit.push(("ber_kernel_scalar".into(), s.ns_per_iter / BER_BITS as f64));
    ns_per_bit.push(("ber_kernel_batch".into(), b.ns_per_iter / BER_BITS as f64));
    ns_per_bit.push(("ber_kernel_lanes".into(), l.ns_per_iter / BER_BITS as f64));
    speedups.push((
        "ber_kernel_batch_vs_scalar".into(),
        Some(b.speedup_over(&s)),
    ));
    speedups.push(("ber_kernel_lanes_vs_batch".into(), Some(l.speedup_over(&b))));
    results.push(s);
    results.push(b);
    results.push(l);

    // Rician outage, same three generations: scalar two-normal sampler,
    // AoS batch fill (`count_outages_scratch_batch`), fused lane kernel.
    let fader = RicianFading::mmwave_los();
    let s = bench("outage_kernel_scalar_100k", &mut || {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        fader.outage_probability(Db::new(7.0), OUTAGE_TRIALS, &mut rng)
    });
    let b = bench("outage_kernel_batch_100k", &mut || {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        let mut scratch = FadeScratch::new();
        fader.count_outages_scratch_batch(Db::new(7.0), OUTAGE_TRIALS, &mut rng, &mut scratch)
            as f64
            / OUTAGE_TRIALS as f64
    });
    let l = bench("outage_kernel_lanes_100k", &mut || {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        let mut scratch = FadeScratch::new();
        fader.count_outages_scratch(Db::new(7.0), OUTAGE_TRIALS, &mut rng, &mut scratch) as f64
            / OUTAGE_TRIALS as f64
    });
    ns_per_bit.push((
        "outage_kernel_scalar".into(),
        s.ns_per_iter / OUTAGE_TRIALS as f64,
    ));
    ns_per_bit.push((
        "outage_kernel_batch".into(),
        b.ns_per_iter / OUTAGE_TRIALS as f64,
    ));
    ns_per_bit.push((
        "outage_kernel_lanes".into(),
        l.ns_per_iter / OUTAGE_TRIALS as f64,
    ));
    speedups.push((
        "outage_kernel_batch_vs_scalar".into(),
        Some(b.speedup_over(&s)),
    ));
    speedups.push((
        "outage_kernel_lanes_vs_batch".into(),
        Some(l.speedup_over(&b)),
    ));
    results.push(s);
    results.push(b);
    results.push(l);

    // Gaussian fill: the scalar pair-chain reference (what PR 3's batch
    // kernels called per sample) vs the fused Box–Muller lane pipeline.
    // Same stream contract, so assert it before timing.
    {
        let mut a = vec![0.0f64; FILL_SAMPLES];
        let mut b = vec![0.0f64; FILL_SAMPLES];
        tree.rng_indexed("fill-bench", 0).fill_normal(&mut a);
        tree.rng_indexed("fill-bench", 0)
            .fill_normal_reference(&mut b);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "lane Gaussian fill must be bit-identical to the reference"
        );
    }
    let mut buf = vec![0.0f64; FILL_SAMPLES];
    let s = bench("fill_normal_scalar_64k", &mut || {
        let mut rng = tree.rng_indexed("fill-bench", 0);
        rng.fill_normal_reference(&mut buf);
        buf[0]
    });
    let mut buf = vec![0.0f64; FILL_SAMPLES];
    let l = bench("fill_normal_lanes_64k", &mut || {
        let mut rng = tree.rng_indexed("fill-bench", 0);
        rng.fill_normal(&mut buf);
        buf[0]
    });
    ns_per_bit.push((
        "fill_normal_scalar".into(),
        s.ns_per_iter / FILL_SAMPLES as f64,
    ));
    ns_per_bit.push((
        "fill_normal_lanes".into(),
        l.ns_per_iter / FILL_SAMPLES as f64,
    ));
    speedups.push((
        "fill_normal_lanes_vs_batch".into(),
        Some(l.speedup_over(&s)),
    ));
    results.push(s);
    results.push(l);

    // FFT: the radix-2 reference plan vs the radix-4 plan `FftPlan::new`
    // now picks for power-of-4 sizes (1024 is every Welch/spectrum
    // experiment's nfft).
    let sig: Vec<Complex> = (0..FFT_N)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
        .collect();
    let plan2 = FftPlan::radix2(FFT_N);
    let plan4 = FftPlan::new(FFT_N);
    assert_eq!(plan4.radix(), 4, "1024 must take the radix-4 kernel");
    let mut buf = sig.clone();
    let s = bench("fft1024_radix2", &mut || {
        plan2.fft(&mut buf);
        buf[0].re
    });
    let mut buf = sig.clone();
    let l = bench("fft1024_radix4", &mut || {
        plan4.fft(&mut buf);
        buf[0].re
    });
    speedups.push(("fft1024_radix4_vs_radix2".into(), Some(l.speedup_over(&s))));
    results.push(s);
    results.push(l);

    // Aloha drain loop: allocating RoundOutcome path vs the slot-count
    // scratch kernel (bit-identical streams, so assert equality too).
    {
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        let a = inventory_until_drained(TAGS, QAlgorithm::new(), 100_000, &mut rng);
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        let mut scratch = AlohaScratch::new();
        let b = inventory_until_drained_scratch(
            TAGS,
            QAlgorithm::new(),
            100_000,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(a, b, "scratch drain loop must be bit-identical");
    }
    let s = bench("aloha_drain_alloc_128tags", &mut || {
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        inventory_until_drained(TAGS, QAlgorithm::new(), 100_000, &mut rng).total_slots as f64
    });
    let p = bench("aloha_drain_scratch_128tags", &mut || {
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        let mut scratch = AlohaScratch::new();
        inventory_until_drained_scratch(TAGS, QAlgorithm::new(), 100_000, &mut rng, &mut scratch)
            .total_slots as f64
    });
    pair(
        "aloha_drain_scratch_vs_alloc",
        &mut results,
        &mut speedups,
        s,
        p,
    );

    // ---- serial vs parallel at pinned thread counts (pool rows) ----
    //
    // `par1` runs the same serial code path through the parallel entry
    // point (threads ≤ 1 bypasses the pool), so its ratio near 1.0 is the
    // dispatch-overhead sanity row; `par4` is the speedup headline. Every
    // parallel result is asserted bit-identical to the serial one first —
    // the determinism contract the pool rewrite must preserve — even when
    // the *timing* is skipped because the host has fewer cores than the
    // pinned thread count (a time-sliced ratio measures the scheduler,
    // not the pool; the row becomes `null` with a reason in `skipped`).
    let mut par_row = |t: usize,
                       name: &str,
                       serial: &BenchResult,
                       speedups: &mut Vec<(String, Option<f64>)>,
                       results: &mut Vec<BenchResult>,
                       f: &mut dyn FnMut() -> f64| {
        let row = format!("{name}_par{t}_vs_serial");
        if t > cores {
            speedups.push((row.clone(), None));
            skipped.push((row, format!("cores={cores} < threads={t}")));
            return;
        }
        let p = bench(&format!("{name}_par{t}"), f);
        let ratio = p.speedup_over(serial);
        speedups.push((row, Some(ratio)));
        scaling.push((format!("{name}_par{t}"), ratio / t as f64));
        results.push(p);
    };

    // Single-point BER, chunk-parallel.
    let s = bench("ber_point_100kbit_serial", &mut || {
        measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree)
    });
    let a = measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree);
    results.push(s.clone());
    for t in PAR_THREADS {
        let b = measure_ber_par_with(t, &modem, 7.0, BER_BITS, true, &tree);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "parallel BER must be bit-identical at {t} threads"
        );
        par_row(
            t,
            "ber_point_100kbit",
            &s,
            &mut speedups,
            &mut results,
            &mut || measure_ber_par_with(t, &modem, 7.0, BER_BITS, true, &tree),
        );
    }

    // Full sweep, parallel over the flattened (SNR × chunk) grid.
    let s = bench("ber_sweep_8x100kbit_serial", &mut || {
        ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree)[0]
    });
    let a = ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree);
    results.push(s.clone());
    for t in PAR_THREADS {
        let b = ber_sweep_par_with(t, &modem, &BER_SNRS, BER_BITS, true, &tree);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel BER sweep must be bit-identical at {t} threads"
        );
        par_row(
            t,
            "ber_sweep_8x100kbit",
            &s,
            &mut speedups,
            &mut results,
            &mut || ber_sweep_par_with(t, &modem, &BER_SNRS, BER_BITS, true, &tree)[0],
        );
    }

    // Inventory ensemble, one repetition per work unit, scratch per worker.
    let s = bench("aloha_ensemble_128tags_x16_serial", &mut || {
        inventory_ensemble_par_with(1, TAGS, QAlgorithm::new(), 100_000, REPS, &tree)[0].total_slots
            as f64
    });
    let a = inventory_ensemble_par_with(1, TAGS, QAlgorithm::new(), 100_000, REPS, &tree);
    results.push(s.clone());
    for t in PAR_THREADS {
        let b = inventory_ensemble_par_with(t, TAGS, QAlgorithm::new(), 100_000, REPS, &tree);
        assert_eq!(
            a, b,
            "parallel ensemble must be bit-identical at {t} threads"
        );
        par_row(
            t,
            "aloha_ensemble_128tags_x16",
            &s,
            &mut speedups,
            &mut results,
            &mut || {
                inventory_ensemble_par_with(t, TAGS, QAlgorithm::new(), 100_000, REPS, &tree)[0]
                    .total_slots as f64
            },
        );
    }

    // ---- city engine: calendar-queue DES vs the heap reference ----
    //
    // The city-scale rows: a dense reader grid inventorying 10⁵ (quick)
    // or 10⁶ (full) mobile tags. The gated `city_calendar_vs_heap_des`
    // ratio is the tentpole number — the sharded calendar-queue engine,
    // run serially, against the same per-reader logic on the binary-heap
    // scheduler. Bit-identity across engines and thread counts is
    // asserted *before* any timing; `par{t}` rows follow the same
    // honest core-aware skip as every other pool row. The `throughput`
    // rows (`tags_per_sec`, `events_per_sec`) are what `--verify` pins:
    // wall-clock engine rate of the production path (tag-rounds and DES
    // events per second).
    let city_tags: usize = if quick { 100_000 } else { 1_000_000 };
    let city_rounds = if quick { 3 } else { 6 };
    let city_label = format!("city_{}k", city_tags / 1_000);
    let city_cfg = CityConfig::dense(city_tags, city_rounds);
    let city_tree = tree.subtree("city-bench");
    let city_stats = {
        let mut reference = CityEngine::new(city_cfg, city_tree);
        let want = reference.run_rounds_reference();
        assert!(want.tags_read > 0, "city bench must actually read tags");
        for t in [1usize, 2, 4] {
            let mut eng = CityEngine::new(city_cfg, city_tree);
            assert_eq!(
                eng.run_rounds(t),
                want,
                "sharded city engine must be bit-identical at {t} threads"
            );
        }
        want
    };
    let s = bench(&format!("{city_label}_heap_des"), &mut || {
        let mut eng = CityEngine::new(city_cfg, city_tree);
        eng.run_rounds_reference().tags_read as f64
    });
    let l = bench(&format!("{city_label}_calendar_serial"), &mut || {
        let mut eng = CityEngine::new(city_cfg, city_tree);
        eng.run_rounds(1).tags_read as f64
    });
    speedups.push(("city_calendar_vs_heap_des".into(), Some(l.speedup_over(&s))));
    ns_per_bit.push((
        "city_ns_per_event".into(),
        l.ns_per_iter / city_stats.events as f64,
    ));
    // Throughput is engine rate, not MAC yield: every round streams the
    // whole population through mobility/harvest/assignment regardless of
    // how many tags the (still-adapting) Q-algorithm reads, so the
    // tags-per-second row is population × rounds over wall time.
    let city_secs = l.ns_per_iter / 1e9;
    throughput.push((
        format!("{city_label}_tags_per_sec"),
        (city_tags as u64 * city_stats.rounds) as f64 / city_secs,
    ));
    throughput.push((
        format!("{city_label}_events_per_sec"),
        city_stats.events as f64 / city_secs,
    ));
    for t in PAR_THREADS {
        par_row(t, &city_label, &l, &mut speedups, &mut results, &mut || {
            let mut eng = CityEngine::new(city_cfg, city_tree);
            eng.run_rounds(t).tags_read as f64
        });
    }
    results.push(s);
    results.push(l);

    // ---- serving: daemon + load generator ----
    //
    // Four passes, all fully shut down before the traced pass below
    // (executors drain the global obs log after every job, which would
    // swallow trace spans):
    //
    // 1. the *point mix* pass: an in-process daemon on an ephemeral TCP
    //    port, driven by the deterministic loadgen mix over ONE
    //    closed-loop connection so the expected hit/miss classification
    //    matches arrival order exactly. A fresh cache directory makes
    //    the first request per seed a true simulation; every repeat
    //    resolves from the in-memory store. `--verify` holds the report
    //    to `cache_hit_ratio > 0.5` and `miss_p50 ≥ 10 × hit_p99`;
    // 2. the *sweep-heavy* pass: the same daemon, driven by
    //    `Mix::sweep_heavy()` — this is where `sweep_jobs_per_sec` and
    //    `points_per_sec` come from (campaign seed bases sit beyond the
    //    point pool, so sweep points are genuinely cold);
    // 3. the *executors-scaling* pass (cores ≥ 2 only): the same point
    //    mix replayed against fresh daemons at 1 and 2 executors,
    //    `serving_scaling_efficiency` = (jobs/s ratio) ÷ 2. On fewer
    //    cores the row is null + skipped, like the par{t} rows;
    // 4. the *sweep-fanout* pass (cores ≥ 2 only): one cache-cold
    //    64-point sweep request vs the same 64 points as individual
    //    `run` requests, equal thread budget (sweep: 1 executor × 2
    //    job threads; pointwise: 2 executors × 1 thread over 2
    //    connections). Gated at ≥ 2× in `speedups`.
    let serving = {
        use mmtag_bench::loadgen::{self, Mix};
        use mmtag_sim::cache::RunCache;
        use mmtag_sim::serve::{Client, EngineConfig, Server};
        use std::time::Instant;

        let fresh_cache = |tag: &str| {
            let dir = std::path::Path::new("target").join(format!("mmtag-serve-bench-{tag}"));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };
        let start_server = |cache_dir: &std::path::Path, executors: usize, job_threads: usize| {
            Server::builder(mmtag_bench::scenarios::registry())
                .tcp("127.0.0.1:0")
                .cache(RunCache::at(cache_dir))
                .config(EngineConfig {
                    executors,
                    job_threads,
                    queue_capacity: 64,
                    memory_capacity: 64,
                })
                .start()
                .expect("serve daemon failed to start")
        };
        let stop_server = |server: Server, addr: std::net::SocketAddr| {
            Client::connect_tcp(addr)
                .and_then(|mut c| c.roundtrip("{\"id\":0,\"op\":\"shutdown\"}"))
                .expect("daemon shutdown");
            server.join();
        };

        // Pass 1: point mix (hit/miss latency, jobs/s, hit ratio).
        let cache_dir = fresh_cache("mix");
        let mut mix = Mix::quick();
        let n_requests = if quick {
            mix.trials = 60_000;
            160
        } else {
            mix.trials = 150_000;
            480
        };
        let server = start_server(&cache_dir, 2, threads.clamp(1, 2));
        let addr = server.tcp_addr().expect("tcp listener");
        let requests = loadgen::generate(&mix, n_requests, 0x5EED);
        let summary = loadgen::closed_loop(&move || Client::connect_tcp(addr), 1, &requests)
            .expect("loadgen run failed");

        // Pass 2: sweep-heavy mix on the same (warm) daemon — sweep
        // campaigns use seed bases beyond the point pool, so their grid
        // points still exercise the cold fan-out path.
        let mut sweep_mix = Mix::sweep_heavy();
        sweep_mix.trials = mix.trials;
        let n_sweep = if quick { 48 } else { 144 };
        let sweep_requests = loadgen::generate(&sweep_mix, n_sweep, 0x5EED);
        let sweep_summary =
            loadgen::closed_loop(&move || Client::connect_tcp(addr), 1, &sweep_requests)
                .expect("sweep-heavy loadgen run failed");
        stop_server(server, addr);
        assert!(
            sweep_summary.sweep_jobs > 0,
            "sweep-heavy mix must retire sweep jobs"
        );
        println!(
            "serving: {} reqs ({} ok, {} rejected), hit p50/p99 {}/{} us, miss p50/p99 {}/{} us, {:.0} jobs/s, hit ratio {:.3}",
            summary.requests,
            summary.ok,
            summary.rejected,
            summary.hit_p50_us,
            summary.hit_p99_us,
            summary.miss_p50_us,
            summary.miss_p99_us,
            summary.jobs_per_sec,
            summary.cache_hit_ratio,
        );
        println!(
            "serving (sweep-heavy): {} sweeps ({} points), {:.1} sweep jobs/s, {:.1} points/s",
            sweep_summary.sweep_jobs,
            sweep_summary.sweep_points,
            sweep_summary.sweep_jobs_per_sec,
            sweep_summary.points_per_sec,
        );

        // Pass 3: executors scaling — honest null on a host that cannot
        // physically run two executors in parallel.
        let scaling_efficiency = if cores < 2 {
            skipped.push((
                "serving_scaling_efficiency".into(),
                format!("cores={cores} < 2"),
            ));
            None
        } else {
            let mut jobs = [0.0f64; 2];
            for (i, executors) in [1usize, 2].into_iter().enumerate() {
                let dir = fresh_cache(&format!("scale-e{executors}"));
                let server = start_server(&dir, executors, 1);
                let addr = server.tcp_addr().expect("tcp listener");
                let s = loadgen::closed_loop(&move || Client::connect_tcp(addr), 2, &requests)
                    .expect("scaling loadgen run failed");
                jobs[i] = s.jobs_per_sec;
                stop_server(server, addr);
                let _ = std::fs::remove_dir_all(&dir);
            }
            let eff = (jobs[1] / jobs[0]) / 2.0;
            println!(
                "serving scaling: 2 executors vs 1 -> {:.2}x jobs/s (efficiency {eff:.3})",
                jobs[1] / jobs[0]
            );
            Some(eff)
        };

        // Pass 4: one 64-point cache-cold sweep vs 64 pointwise runs.
        // Small trial counts keep each point under one Monte-Carlo
        // chunk, so the pointwise path cannot parallelize *inside* a
        // job — the grid is the only axis with parallelism to harvest,
        // which is precisely the sweep op's claim.
        const FANOUT_POINTS: u64 = 64;
        let fanout = if cores < 2 {
            skipped.push((
                "sweep_fanout_vs_pointwise".into(),
                format!("cores={cores} < 2"),
            ));
            None
        } else {
            let fanout_trials = 2_000;
            let dir = fresh_cache("fanout-sweep");
            let server = start_server(&dir, 1, 2);
            let addr = server.tcp_addr().expect("tcp listener");
            let mut client = Client::connect_tcp(addr).expect("fanout sweep connect");
            let req = format!(
                "{{\"id\":1,\"op\":\"sweep\",\"scenario\":\"e05-ber\",\"seeds\":{FANOUT_POINTS},\"seed\":0,\"trials\":{fanout_trials},\"points\":8}}"
            );
            let mut resp = String::new();
            let t0 = Instant::now();
            let n = client.sweep_into(&req, &mut resp).expect("fanout sweep");
            let sweep_secs = t0.elapsed().as_secs_f64();
            assert_eq!(
                n, FANOUT_POINTS as usize,
                "fanout sweep must stream every point"
            );
            drop(client);
            stop_server(server, addr);
            let _ = std::fs::remove_dir_all(&dir);

            let dir = fresh_cache("fanout-point");
            let server = start_server(&dir, 2, 1);
            let addr = server.tcp_addr().expect("tcp listener");
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for lane in 0..2u64 {
                    scope.spawn(move || {
                        let mut client = Client::connect_tcp(addr).expect("fanout run connect");
                        let mut resp = String::new();
                        for p in (lane..FANOUT_POINTS).step_by(2) {
                            let req = format!(
                                "{{\"id\":{p},\"op\":\"run\",\"scenario\":\"e05-ber\",\"seed\":{p},\"trials\":{fanout_trials},\"points\":8}}"
                            );
                            client.roundtrip_into(&req, &mut resp).expect("fanout run");
                            assert!(resp.contains("\"ok\":true"), "fanout run failed: {resp}");
                        }
                    });
                }
            });
            let point_secs = t0.elapsed().as_secs_f64();
            stop_server(server, addr);
            let _ = std::fs::remove_dir_all(&dir);
            let ratio = point_secs / sweep_secs;
            println!(
                "serving fanout: {FANOUT_POINTS}-point sweep {:.1} pts/s vs pointwise {:.1} pts/s -> {ratio:.2}x",
                FANOUT_POINTS as f64 / sweep_secs,
                FANOUT_POINTS as f64 / point_secs,
            );
            Some(ratio)
        };
        speedups.push(("sweep_fanout_vs_pointwise".into(), fanout));

        vec![
            ("hit_p50_us".to_string(), Some(summary.hit_p50_us as f64)),
            ("hit_p99_us".to_string(), Some(summary.hit_p99_us as f64)),
            ("miss_p50_us".to_string(), Some(summary.miss_p50_us as f64)),
            ("miss_p99_us".to_string(), Some(summary.miss_p99_us as f64)),
            ("jobs_per_sec".to_string(), Some(summary.jobs_per_sec)),
            ("cache_hit_ratio".to_string(), Some(summary.cache_hit_ratio)),
            (
                "sweep_jobs_per_sec".to_string(),
                Some(sweep_summary.sweep_jobs_per_sec),
            ),
            (
                "points_per_sec".to_string(),
                Some(sweep_summary.points_per_sec),
            ),
            ("serving_scaling_efficiency".to_string(), scaling_efficiency),
            (
                "cache_entries".to_string(),
                Some(summary.cache_entries as f64),
            ),
            ("cache_bytes".to_string(), Some(summary.cache_bytes as f64)),
            ("requests".to_string(), Some(summary.requests as f64)),
            ("rejected".to_string(), Some(summary.rejected as f64)),
        ]
    };

    // ---- rate region: E29 kernel cost + single-tag AWGN anchor ----
    //
    // Two rows with different jobs: the *anchor* proves the estimator is
    // still on its analytic pin (one tag, K = ∞ everywhere — no
    // randomness left, so the Monte-Carlo primary rate must equal
    // log2(1 + ρ|1 + a·ĉ|²) to fp accumulation error; `--verify` holds
    // the gap under RATE_ANCHOR_TOL), and `ns_per_trial` tracks what one
    // trial of the canonical two-tag 4-PSK E29 cell costs.
    let rate_region = {
        use mmtag_channel::cascade::{HopModel, MultiTagCascade};
        use mmtag_phy::constellation::TagConstellation;
        use mmtag_sim::rate_region::{
            awgn_primary_rate_anchor, rate_region_grid_par_with, sum_rate_chunk, RateRegionConfig,
            RateScratch, RATE_CHUNK_TRIALS,
        };

        let anchor_cfg = RateRegionConfig {
            cascade: MultiTagCascade::new(
                10.0,
                HopModel::new(2.6, f64::INFINITY),
                HopModel::new(2.4, f64::INFINITY),
                HopModel::new(2.0, f64::INFINITY),
            )
            .with_tag(9.0, 2.0),
            constellation: TagConstellation::psk(2, 0.5),
            snr_db: 10.0,
            symbol_ratio: 10.0,
        };
        let anchor_tree = tree.subtree("rate-anchor");
        let mc = rate_region_grid_par_with(threads, &anchor_cfg, &[1.0], 256, &anchor_tree)[0]
            .primary_rate;
        let closed = awgn_primary_rate_anchor(&anchor_cfg);
        let err = (mc - closed).abs();

        let cfg = RateRegionConfig {
            cascade: MultiTagCascade::ring(
                2,
                10.0,
                2.0,
                HopModel::new(2.6, 5.0),
                HopModel::new(2.4, 5.0),
                HopModel::new(2.0, 5.0),
            ),
            constellation: TagConstellation::psk(4, 0.5),
            snr_db: 10.0,
            symbol_ratio: 10.0,
        };
        let rate_tree = tree.subtree("rate-bench");
        let mut scratch = RateScratch::new();
        let trials = if quick { 64 } else { RATE_CHUNK_TRIALS };
        let r = bench("rate_region_chunk", &mut || {
            let c = sum_rate_chunk(&cfg, &rate_tree, 0, trials, &mut scratch);
            c.primary.iter().sum::<f64>() + c.backscatter.iter().sum::<f64>()
        });
        let ns_per_trial = r.ns_per_iter / trials as f64;
        results.push(r);
        println!(
            "rate_region: {ns_per_trial:.0} ns/trial, anchor MC {mc:.9} vs closed form \
             {closed:.9} (err {err:.2e})"
        );
        vec![
            ("ns_per_trial".to_string(), ns_per_trial),
            ("single_tag_awgn_primary".to_string(), mc),
            ("single_tag_awgn_closed_form".to_string(), closed),
            ("single_tag_awgn_anchor_err".to_string(), err),
        ]
    };

    // ---- observability overhead: the BER batch kernel with tracing on ----
    //
    // The ISSUE-4 acceptance bar: full tracing (spans + counters) must cost
    // ≤ 5% on the hottest kernel. Instrumentation sits at chunk
    // granularity (8192 bits per span), so the ratio should sit near 1.0;
    // the traced/untraced pair below is the recorded evidence. The traced
    // run also populates the span table annotated onto the report.
    obs::reset();
    obs::set_level(obs::Level::Trace);
    let traced = bench("ber_kernel_lanes_100kbit_traced", &mut chunk_errors_lanes);
    // One traced pass over the other hot kernels so the report's span
    // breakdown covers the full taxonomy, not just the BER path.
    {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        let mut scratch = FadeScratch::new();
        let _ = std::hint::black_box(fader.count_outages_scratch(
            Db::new(7.0),
            OUTAGE_TRIALS,
            &mut rng,
            &mut scratch,
        ));
        let _ = std::hint::black_box(inventory_ensemble_par_with(
            threads,
            TAGS,
            QAlgorithm::new(),
            100_000,
            REPS,
            &tree,
        ));
    }
    obs::set_level(obs::Level::Off);
    let trace_report = obs::drain();
    speedups.push((
        "ber_kernel_traced_over_untraced".to_string(),
        Some(traced.speedup_over(&lanes_untraced)),
    ));
    results.push(traced);

    for r in &results {
        println!("{}", format_result(r));
    }
    println!("\n== speedups ({threads} threads, {cores} cores) ==");
    for (name, ratio) in &speedups {
        match ratio {
            Some(r) => println!("{name:<44} {r:>6.2}×"),
            None => println!("{name:<44}   skipped"),
        }
    }
    for (name, why) in &skipped {
        println!("  skipped {name}: {why}");
    }

    let report = Report {
        threads,
        available_cores: cores,
        benches: results,
        speedups,
        skipped,
        scaling_efficiency: scaling,
        ns_per_bit,
        throughput,
        serving,
        rate_region,
        spans: trace_report.spans,
    };
    let json = report.to_json();
    verify_report(&json).expect("bench_report produced a report its own gate rejects");
    std::fs::write(REPORT, &json).expect("write BENCH_report.json");
    println!(
        "\nwrote {REPORT}{}",
        if quick { " (quick mode)" } else { "" }
    );
}
