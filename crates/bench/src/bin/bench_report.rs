//! Serial-vs-parallel speedup report for the Monte-Carlo engine.
//!
//! Runs the engine's hot paths — single-point BER, an 8-point BER sweep,
//! and an Aloha inventory ensemble — once pinned to one thread and once at
//! the machine's thread limit (`MMTAG_THREADS` or `available_parallelism`),
//! asserts the outputs are bit-identical, and writes `BENCH_report.json`
//! (name → ns/iter plus named speedup ratios) to the current directory.
//!
//! On a single-core box the speedups hover near 1×; on a 4+-core machine
//! the BER rows should clear 3×.

use mmtag_bench::timing::{bench, format_result, report_json, BenchResult};
use mmtag_mac::aloha::{inventory_ensemble_par_with, QAlgorithm};
use mmtag_phy::waveform::{ber_sweep_par_with, measure_ber_par_with, OokModem};
use mmtag_rf::rng::SeedTree;

const BER_BITS: usize = 100_000;
const BER_SNRS: [f64; 8] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
const TAGS: usize = 128;
const REPS: usize = 16;

fn main() {
    let threads = mmtag_rf::par::thread_limit();
    let tree = SeedTree::new(0xBE9C);
    let modem = OokModem::new(4);
    let mut results: Vec<BenchResult> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    let pair = |name: &str,
                results: &mut Vec<BenchResult>,
                speedups: &mut Vec<(String, f64)>,
                serial: BenchResult,
                par: BenchResult| {
        speedups.push((name.to_string(), par.speedup_over(&serial)));
        results.push(serial);
        results.push(par);
    };

    // Single-point BER, chunk-parallel.
    let s = bench("ber_point_100kbit_serial", || {
        measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree)
    });
    let p = bench("ber_point_100kbit_par", || {
        measure_ber_par_with(threads, &modem, 7.0, BER_BITS, true, &tree)
    });
    let a = measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree);
    let b = measure_ber_par_with(threads, &modem, 7.0, BER_BITS, true, &tree);
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "parallel BER must be bit-identical"
    );
    pair("ber_point_100kbit", &mut results, &mut speedups, s, p);

    // Full sweep, parallel over (SNR × chunk).
    let s = bench("ber_sweep_8x100kbit_serial", || {
        ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree)
    });
    let p = bench("ber_sweep_8x100kbit_par", || {
        ber_sweep_par_with(threads, &modem, &BER_SNRS, BER_BITS, true, &tree)
    });
    let a = ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree);
    let b = ber_sweep_par_with(threads, &modem, &BER_SNRS, BER_BITS, true, &tree);
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "parallel BER sweep must be bit-identical"
    );
    pair("ber_sweep_8x100kbit", &mut results, &mut speedups, s, p);

    // Inventory ensemble, one repetition per work unit.
    let s = bench("aloha_ensemble_128tags_x16_serial", || {
        inventory_ensemble_par_with(1, TAGS, QAlgorithm::new(), 100_000, REPS, &tree)
    });
    let p = bench("aloha_ensemble_128tags_x16_par", || {
        inventory_ensemble_par_with(threads, TAGS, QAlgorithm::new(), 100_000, REPS, &tree)
    });
    let a = inventory_ensemble_par_with(1, TAGS, QAlgorithm::new(), 100_000, REPS, &tree);
    let b = inventory_ensemble_par_with(threads, TAGS, QAlgorithm::new(), 100_000, REPS, &tree);
    assert_eq!(a, b, "parallel ensemble must be bit-identical");
    pair(
        "aloha_ensemble_128tags_x16",
        &mut results,
        &mut speedups,
        s,
        p,
    );

    for r in &results {
        println!("{}", format_result(r));
    }
    println!("\n== serial → parallel speedups ({threads} threads) ==");
    for (name, ratio) in &speedups {
        println!("{name:<40} {ratio:>6.2}×");
    }

    let json = report_json(&results, &speedups, threads);
    std::fs::write("BENCH_report.json", &json).expect("write BENCH_report.json");
    println!("\nwrote BENCH_report.json");
}
