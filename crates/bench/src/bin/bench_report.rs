//! The perf-trajectory report for the Monte-Carlo engine.
//!
//! Two kinds of rows, all asserted bit-identical where the determinism
//! contract applies, written to `BENCH_report.json`:
//!
//! * **serial → parallel** speedups of the engine hot paths (single-point
//!   BER, an 8-point BER sweep, an Aloha inventory ensemble) — PR 1's
//!   headline numbers, kept so the trajectory stays comparable. Since the
//!   persistent pool made thread count a pure scheduling knob, these run
//!   at *pinned* counts (1 and 4 threads), one speedup row per count
//!   (`ber_sweep_8x100kbit_par4_vs_serial`, …), instead of inheriting
//!   whatever the host machine advertises;
//! * **old-kernel → batch-kernel** speedups at one thread — this PR's
//!   headline: the pre-batch allocating sampler-v1 chains
//!   ([`count_bit_errors_reference`], the scalar
//!   [`RicianFading::outage_probability`], the allocating
//!   [`inventory_until_drained`]) against the zero-allocation scratch
//!   kernels that replaced them in the hot loops.
//!
//! Modes: no args = full-fidelity run; `--quick` = small timing rounds so
//! `scripts/check.sh` can regenerate and validate the report on every
//! check in seconds; `--verify` = don't benchmark at all, just require
//! that `BENCH_report.json` exists and parses as JSON (exit 1 otherwise).

use mmtag_bench::timing::{bench_with, format_result, report_json, validate_json, BenchResult};
use mmtag_channel::fading::{FadeScratch, RicianFading};
use mmtag_mac::aloha::{
    inventory_ensemble_par_with, inventory_until_drained, inventory_until_drained_scratch,
    AlohaScratch, QAlgorithm,
};
use mmtag_phy::waveform::{
    ber_sweep_par_with, count_bit_errors_reference, count_bit_errors_scratch, measure_ber_par_with,
    Awgn, OokModem, TrialScratch, MC_CHUNK_BITS,
};
use mmtag_rf::obs;
use mmtag_rf::rng::SeedTree;
use mmtag_rf::units::Db;

const BER_BITS: usize = 100_000;
/// Pinned thread counts for the serial-vs-parallel rows: 1 (pool
/// bypassed, measures dispatch overhead) and 4 (the speedup headline).
const PAR_THREADS: [usize; 2] = [1, 4];
const BER_SNRS: [f64; 8] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
const TAGS: usize = 128;
const REPS: usize = 16;
const OUTAGE_TRIALS: usize = 100_000;

const REPORT: &str = "BENCH_report.json";

fn verify() -> ! {
    match std::fs::read_to_string(REPORT) {
        Err(e) => {
            eprintln!("bench_report --verify: cannot read {REPORT}: {e}");
            std::process::exit(1);
        }
        Ok(text) => match validate_json(&text) {
            Err(e) => {
                eprintln!("bench_report --verify: {REPORT} is not valid JSON: {e}");
                std::process::exit(1);
            }
            Ok(()) => {
                println!("{REPORT}: valid JSON ({} bytes)", text.len());
                std::process::exit(0);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--verify") {
        verify();
    }
    let quick = args.iter().any(|a| a == "--quick");
    // Quick mode: ~6 ms rounds, 2 rounds — noisy numbers, same pipeline.
    let (target, rounds) = if quick {
        (6_000_000, 2)
    } else {
        (80_000_000, 5)
    };
    let bench = |name: &str, f: &mut dyn FnMut() -> f64| -> BenchResult {
        bench_with(name, target, rounds, f)
    };

    let threads = mmtag_rf::par::thread_limit();
    let tree = SeedTree::new(0xBE9C);
    let modem = OokModem::new(4);
    let mut results: Vec<BenchResult> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    let pair = |name: &str,
                results: &mut Vec<BenchResult>,
                speedups: &mut Vec<(String, f64)>,
                baseline: BenchResult,
                improved: BenchResult| {
        speedups.push((name.to_string(), improved.speedup_over(&baseline)));
        results.push(baseline);
        results.push(improved);
    };

    // ---- old kernel vs batch kernel, both serial (this PR's headline) ----

    // Waveform BER: the pre-batch chain (per-chunk Vec allocs, sampler-v1
    // AWGN, materialized decisions) vs the TrialScratch kernel, over the
    // same chunk decomposition.
    let chunk_errors_old = || {
        let mut total = 0u64;
        let chunks = BER_BITS.div_ceil(MC_CHUNK_BITS);
        for ci in 0..chunks {
            let n = MC_CHUNK_BITS.min(BER_BITS - ci * MC_CHUNK_BITS);
            let mut rng = tree.rng_indexed("ber-chunk", ci as u64);
            total += count_bit_errors_reference(&modem, 7.0, n, true, &mut rng) as u64;
        }
        total as f64 / BER_BITS as f64
    };
    let mut chunk_errors_new = || {
        let awgn = Awgn::for_eb_n0(&modem, 7.0);
        let mut scratch = TrialScratch::new();
        let mut total = 0u64;
        let chunks = BER_BITS.div_ceil(MC_CHUNK_BITS);
        for ci in 0..chunks {
            let n = MC_CHUNK_BITS.min(BER_BITS - ci * MC_CHUNK_BITS);
            let mut rng = tree.rng_indexed("ber-chunk", ci as u64);
            total +=
                count_bit_errors_scratch(&modem, &awgn, n, true, &mut rng, &mut scratch) as u64;
        }
        total as f64 / BER_BITS as f64
    };
    let s = bench("ber_kernel_scalar_100kbit", &mut { chunk_errors_old });
    let p = bench("ber_kernel_batch_100kbit", &mut chunk_errors_new);
    let batch_untraced = p.clone();
    pair(
        "ber_kernel_batch_vs_scalar",
        &mut results,
        &mut speedups,
        s,
        p,
    );

    // Rician outage: scalar two-normal sampler vs the FadeScratch
    // bulk-fill kernel.
    let fader = RicianFading::mmwave_los();
    let s = bench("outage_kernel_scalar_100k", &mut || {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        fader.outage_probability(Db::new(7.0), OUTAGE_TRIALS, &mut rng)
    });
    let p = bench("outage_kernel_batch_100k", &mut || {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        let mut scratch = FadeScratch::new();
        fader.count_outages_scratch(Db::new(7.0), OUTAGE_TRIALS, &mut rng, &mut scratch) as f64
            / OUTAGE_TRIALS as f64
    });
    pair(
        "outage_kernel_batch_vs_scalar",
        &mut results,
        &mut speedups,
        s,
        p,
    );

    // Aloha drain loop: allocating RoundOutcome path vs the slot-count
    // scratch kernel (bit-identical streams, so assert equality too).
    {
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        let a = inventory_until_drained(TAGS, QAlgorithm::new(), 100_000, &mut rng);
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        let mut scratch = AlohaScratch::new();
        let b = inventory_until_drained_scratch(
            TAGS,
            QAlgorithm::new(),
            100_000,
            &mut rng,
            &mut scratch,
        );
        assert_eq!(a, b, "scratch drain loop must be bit-identical");
    }
    let s = bench("aloha_drain_alloc_128tags", &mut || {
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        inventory_until_drained(TAGS, QAlgorithm::new(), 100_000, &mut rng).total_slots as f64
    });
    let p = bench("aloha_drain_scratch_128tags", &mut || {
        let mut rng = tree.rng_indexed("aloha-rep", 0);
        let mut scratch = AlohaScratch::new();
        inventory_until_drained_scratch(TAGS, QAlgorithm::new(), 100_000, &mut rng, &mut scratch)
            .total_slots as f64
    });
    pair(
        "aloha_drain_scratch_vs_alloc",
        &mut results,
        &mut speedups,
        s,
        p,
    );

    // ---- serial vs parallel at pinned thread counts (pool rows) ----
    //
    // `par1` runs the same serial code path through the parallel entry
    // point (threads ≤ 1 bypasses the pool), so its ratio near 1.0 is the
    // dispatch-overhead sanity row; `par4` is the speedup headline. Every
    // parallel result is asserted bit-identical to the serial one first —
    // the determinism contract the pool rewrite must preserve.

    // Single-point BER, chunk-parallel.
    let s = bench("ber_point_100kbit_serial", &mut || {
        measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree)
    });
    let a = measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree);
    results.push(s.clone());
    for t in PAR_THREADS {
        let b = measure_ber_par_with(t, &modem, 7.0, BER_BITS, true, &tree);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "parallel BER must be bit-identical at {t} threads"
        );
        let p = bench(&format!("ber_point_100kbit_par{t}"), &mut || {
            measure_ber_par_with(t, &modem, 7.0, BER_BITS, true, &tree)
        });
        speedups.push((
            format!("ber_point_100kbit_par{t}_vs_serial"),
            p.speedup_over(&s),
        ));
        results.push(p);
    }

    // Full sweep, parallel over the flattened (SNR × chunk) grid.
    let s = bench("ber_sweep_8x100kbit_serial", &mut || {
        ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree)[0]
    });
    let a = ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree);
    results.push(s.clone());
    for t in PAR_THREADS {
        let b = ber_sweep_par_with(t, &modem, &BER_SNRS, BER_BITS, true, &tree);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel BER sweep must be bit-identical at {t} threads"
        );
        let p = bench(&format!("ber_sweep_8x100kbit_par{t}"), &mut || {
            ber_sweep_par_with(t, &modem, &BER_SNRS, BER_BITS, true, &tree)[0]
        });
        speedups.push((
            format!("ber_sweep_8x100kbit_par{t}_vs_serial"),
            p.speedup_over(&s),
        ));
        results.push(p);
    }

    // Inventory ensemble, one repetition per work unit, scratch per worker.
    let s = bench("aloha_ensemble_128tags_x16_serial", &mut || {
        inventory_ensemble_par_with(1, TAGS, QAlgorithm::new(), 100_000, REPS, &tree)[0].total_slots
            as f64
    });
    let a = inventory_ensemble_par_with(1, TAGS, QAlgorithm::new(), 100_000, REPS, &tree);
    results.push(s.clone());
    for t in PAR_THREADS {
        let b = inventory_ensemble_par_with(t, TAGS, QAlgorithm::new(), 100_000, REPS, &tree);
        assert_eq!(
            a, b,
            "parallel ensemble must be bit-identical at {t} threads"
        );
        let p = bench(&format!("aloha_ensemble_128tags_x16_par{t}"), &mut || {
            inventory_ensemble_par_with(t, TAGS, QAlgorithm::new(), 100_000, REPS, &tree)[0]
                .total_slots as f64
        });
        speedups.push((
            format!("aloha_ensemble_128tags_x16_par{t}_vs_serial"),
            p.speedup_over(&s),
        ));
        results.push(p);
    }

    // ---- observability overhead: the BER batch kernel with tracing on ----
    //
    // The ISSUE-4 acceptance bar: full tracing (spans + counters) must cost
    // ≤ 5% on the hottest kernel. Instrumentation sits at chunk
    // granularity (8192 bits per span), so the ratio should sit near 1.0;
    // the traced/untraced pair below is the recorded evidence. The traced
    // run also populates the span table annotated onto the report.
    obs::reset();
    obs::set_level(obs::Level::Trace);
    let traced = bench("ber_kernel_batch_100kbit_traced", &mut chunk_errors_new);
    // One traced pass over the other hot kernels so the report's span
    // breakdown covers the full taxonomy, not just the BER path.
    {
        let mut rng = tree.rng_indexed("outage-chunk", 0);
        let mut scratch = FadeScratch::new();
        let _ = std::hint::black_box(fader.count_outages_scratch(
            Db::new(7.0),
            OUTAGE_TRIALS,
            &mut rng,
            &mut scratch,
        ));
        let _ = std::hint::black_box(inventory_ensemble_par_with(
            threads,
            TAGS,
            QAlgorithm::new(),
            100_000,
            REPS,
            &tree,
        ));
    }
    obs::set_level(obs::Level::Off);
    let trace_report = obs::drain();
    speedups.push((
        "ber_kernel_traced_over_untraced".to_string(),
        traced.speedup_over(&batch_untraced),
    ));
    results.push(traced);

    for r in &results {
        println!("{}", format_result(r));
    }
    println!("\n== speedups ({threads} threads) ==");
    for (name, ratio) in &speedups {
        println!("{name:<40} {ratio:>6.2}×");
    }

    let json = report_json(&results, &speedups, threads, &trace_report.spans);
    validate_json(&json).expect("bench_report produced invalid JSON");
    std::fs::write(REPORT, &json).expect("write BENCH_report.json");
    println!(
        "\nwrote {REPORT}{}",
        if quick { " (quick mode)" } else { "" }
    );
}
