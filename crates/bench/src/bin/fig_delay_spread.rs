//! E23: delay spread and ISI verdict vs room size.
fn main() {
    println!("{}", mmtag_bench::advanced::fig_delay_spread().render());
}
