//! E23: delay spread and ISI verdict vs room size.
fn main() {
    mmtag_bench::scenarios::print_scenario("e23-delay-spread");
}
