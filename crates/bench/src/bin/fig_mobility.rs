//! E8: rate vs tag rotation — the mobility claim (§1/§3).
fn main() {
    println!("{}", mmtag_bench::network_figs::fig_mobility().render());
    println!("claim: mmTag holds its link at any rotation; the fixed-beam tag collapses.");
}
