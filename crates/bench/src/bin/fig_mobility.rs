//! E8: rate vs tag rotation — the mobility claim (§1/§3).
fn main() {
    mmtag_bench::scenarios::print_scenario("e08-mobility");
    println!("claim: mmTag holds its link at any rotation; the fixed-beam tag collapses.");
}
