//! E15: Rician fading margins and outage.
fn main() {
    mmtag_bench::scenarios::print_scenario("e15-fading");
}
