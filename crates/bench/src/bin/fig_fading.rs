//! E15: Rician fading margins and outage.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_fading(200_000, 3).render());
}
