//! E1: regenerates Fig. 6 — S11 of a tag element, switch off vs on.
fn main() {
    mmtag_bench::scenarios::print_scenario("e01-s11");
    println!("paper anchors: S11(24 GHz, off) ≈ −15 dB; S11(24 GHz, on) ≈ −5 dB");
}
