//! E1: regenerates Fig. 6 — S11 of a tag element, switch off vs on.
fn main() {
    println!("{}", mmtag_bench::eval::fig6_s11(201).render());
    println!("paper anchors: S11(24 GHz, off) ≈ −15 dB; S11(24 GHz, on) ≈ −5 dB");
}
