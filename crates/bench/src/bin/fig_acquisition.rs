//! E19: beam-acquisition latency, one- vs two-sided.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_acquisition().render());
}
