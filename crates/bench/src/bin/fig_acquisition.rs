//! E19: beam-acquisition latency, one- vs two-sided.
fn main() {
    mmtag_bench::scenarios::print_scenario("e19-acquisition");
}
