//! E2: regenerates Fig. 7 — tag signal power vs range, noise floors, rates.
fn main() {
    println!("{}", mmtag_bench::eval::fig7_link_budget().render());
    println!("paper anchors: 1 Gbps @ 4 ft, 10 Mbps @ 10 ft;");
    println!("noise floors ≈ −76 / −86 / −96 dBm at 2 GHz / 200 MHz / 20 MHz");
}
