//! E2: regenerates Fig. 7 — tag signal power vs range, noise floors, rates.
fn main() {
    mmtag_bench::scenarios::print_scenario("e02-link-budget");
    println!("paper anchors: 1 Gbps @ 4 ft, 10 Mbps @ 10 ft;");
    println!("noise floors ≈ −76 / −86 / −96 dBm at 2 GHz / 200 MHz / 20 MHz");
}
