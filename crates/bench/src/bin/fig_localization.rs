//! E25: beam-scan localization accuracy.
fn main() {
    mmtag_bench::scenarios::print_scenario("e25-localization");
}
