//! E25: beam-scan localization accuracy.
fn main() {
    println!("{}", mmtag_bench::advanced::fig_localization().render());
}
