//! E24: Gen2-style protocol inventory cost.
fn main() {
    mmtag_bench::scenarios::print_scenario("e24-gen2");
}
