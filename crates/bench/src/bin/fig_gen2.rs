//! E24: Gen2-style protocol inventory cost.
fn main() {
    println!("{}", mmtag_bench::advanced::fig_gen2(33).render());
}
