//! E9: self-interference — required TX→RX isolation vs range (§9).
fn main() {
    mmtag_bench::scenarios::print_scenario("e09-selfint");
    println!("passive horn isolation (~40 dB) is far short of the ~89 dB needed;");
    println!("§9 is right that SI is the reader's open problem at mmWave.");
}
