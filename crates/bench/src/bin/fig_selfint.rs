//! E9: self-interference — required TX→RX isolation vs range (§9).
fn main() {
    println!("{}", mmtag_bench::system_tables::fig_selfint().render());
    println!("passive horn isolation (~40 dB) is far short of the ~89 dB needed;");
    println!("§9 is right that SI is the reader's open problem at mmWave.");
}
