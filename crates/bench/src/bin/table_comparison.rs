//! E4: the backscatter-systems comparison table (§1/§3).
fn main() {
    mmtag_bench::scenarios::print_scenario("e04-comparison");
    println!("mmTag rows are computed live from the link model; others are published numbers.");
}
