//! E4: the backscatter-systems comparison table (§1/§3).
fn main() {
    println!("{}", mmtag_bench::system_tables::table_comparison().render());
    println!("mmTag rows are computed live from the link model; others are published numbers.");
}
