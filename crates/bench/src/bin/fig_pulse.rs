//! E20: raised-cosine pulse shaping — confinement and rate.
fn main() {
    println!("{}", mmtag_bench::extensions::fig_pulse(3).render());
}
