//! E20: raised-cosine pulse shaping — confinement and rate.
fn main() {
    mmtag_bench::scenarios::print_scenario("e20-pulse");
}
