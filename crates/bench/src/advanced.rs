//! E23–E26: experiments for the second wave of subsystems — ISI analysis,
//! the Gen2-style protocol, localization, and waveform-level SI
//! cancellation.

use crate::scenarios::FigScenario;
use mmtag::localization::{locate, position_error};
use mmtag::prelude::*;
use mmtag::scenario::{build_reader, build_tag, offset_poses};
use mmtag_channel::delay::DelayProfile;
use mmtag_mac::gen2::{run_gen2_inventory, Gen2Tag, Gen2Timing};
use mmtag_phy::cancellation::{AdcClip, Canceller, LeakageChannel};
use mmtag_phy::waveform::{Awgn, OokModem};
use mmtag_rf::rng::{Rng, Xoshiro256pp};
use mmtag_sim::experiment::Table;
use mmtag_sim::mobility::Pose;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E23** spec: the room-size sweep around a fixed 4 ft LOS link.
pub(crate) fn e23_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e23-delay-spread",
        "E23 — delay spread vs room size (tag at 4 ft, LOS + wall bounces)",
    )
    .with_axis("room_m", AxisKind::Values(vec![2.0, 4.0, 8.0, 16.0]))
}

pub(crate) fn e23_body(ctx: &RunContext) -> Vec<Table> {
    let reader = build_reader(&ctx.spec.reader);
    let tag = build_tag(&ctx.spec.tag);
    let mut t = Table::new(
        "E23 — delay spread vs room size (tag at 4 ft, LOS + wall bounces)",
        &[
            "room_m",
            "rms_spread_ns",
            "coherence_bw_mhz",
            "echo_db",
            "flat_at_2ghz",
        ],
    );
    for room in ctx.spec.values("room_m") {
        let scene = Scene::room(room, room);
        let rp = Pose::new(Vec2::new(room / 2.0 - 0.61, room / 2.0), Angle::ZERO);
        let tp = Pose::new(
            Vec2::new(room / 2.0 + 0.61, room / 2.0),
            Angle::from_degrees(180.0),
        );
        let rays = scene.paths(rp, tp);
        let profile =
            DelayProfile::from_rays(&rays, |r| mmtag::link::ray_power(&reader, &tag, r).dbm());
        let spread = profile.rms_delay_spread().unwrap_or(0.0);
        let bc = profile
            .coherence_bandwidth()
            .map(|b| b.mhz())
            .unwrap_or(f64::INFINITY);
        let echo = profile
            .strongest_echo_ratio()
            .map(|r| 10.0 * r.log10())
            .unwrap_or(f64::NEG_INFINITY);
        t.push_row(&[
            room,
            spread * 1e9,
            bc,
            echo,
            profile.is_flat_for(Bandwidth::from_ghz(2.0)) as u8 as f64,
        ]);
    }
    vec![t]
}

/// **E23** — ISI analysis: delay spread, coherence bandwidth and echo
/// strength as the room grows around a 4 ft LOS link. Columns: `room_m`,
/// `rms_spread_ns`, `coherence_bw_mhz`, `echo_db`, `flat_at_2ghz`.
pub fn fig_delay_spread() -> Table {
    FigScenario::new(e23_spec(), e23_body).table()
}

/// **E24** spec: the population sweep under `seed`.
pub(crate) fn e24_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e24-gen2",
        "E24 — Gen2-style inventory (Query→RN16→ACK→EPC) vs population",
    )
    .with_axis("tags", AxisKind::Values(vec![8.0, 32.0, 128.0, 512.0]))
    .with_seed(seed)
}

pub(crate) fn e24_body(ctx: &RunContext) -> Vec<Table> {
    let mut t = Table::new(
        "E24 — Gen2-style inventory (Query→RN16→ACK→EPC) vs population",
        &[
            "tags",
            "commands",
            "singles",
            "collisions",
            "elapsed_ms",
            "per_tag_us",
        ],
    );
    // One population point per parallel work unit: each draws from its own
    // SeedTree subtree, so the sweep is bit-identical at any thread count.
    let pops: Vec<usize> = ctx
        .spec
        .values("tags")
        .iter()
        .map(|&v| v as usize)
        .collect();
    let results = mmtag_sim::par::par_sweep(&ctx.tree, "gen2-pop", &pops, |sub, &n| {
        let mut rng = sub.rng("inventory");
        let mut tags: Vec<Gen2Tag> = (0..n).map(|i| Gen2Tag::new(i as u64)).collect();
        run_gen2_inventory(&mut tags, Gen2Timing::fast_mmwave(), 1_000_000, &mut rng)
    });
    for (&n, stats) in pops.iter().zip(&results) {
        assert_eq!(stats.epcs.len(), n, "inventory must drain");
        let ms = stats.elapsed.as_secs_f64() * 1e3;
        t.push_row(&[
            n as f64,
            stats.commands as f64,
            stats.singles as f64,
            stats.collisions as f64,
            ms,
            ms * 1e3 / n as f64,
        ]);
    }
    vec![t]
}

/// **E24** — the Gen2-style protocol: inventory cost vs population, with
/// the handshake's efficiency. Columns: `tags`, `commands`, `singles`,
/// `collisions`, `elapsed_ms`, `per_tag_us`.
pub fn fig_gen2(seed: u64) -> Table {
    FigScenario::new(e24_spec(seed), e24_body).table()
}

/// **E25** spec: zipped truth axes — row `i` pairs `true_range_ft[i]`
/// with `true_bearing_deg[i]`.
pub(crate) fn e25_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e25-localization",
        "E25 — beam-scan localization: estimate vs truth",
    )
    .with_axis(
        "true_range_ft",
        AxisKind::Values(vec![3.0, 4.0, 6.0, 8.0, 10.0]),
    )
    .with_axis(
        "true_bearing_deg",
        AxisKind::Values(vec![0.0, 15.0, -25.0, 40.0, -10.0]),
    )
}

pub(crate) fn e25_body(ctx: &RunContext) -> Vec<Table> {
    let reader = build_reader(&ctx.spec.reader);
    let tag = build_tag(&ctx.spec.tag);
    let scene = mmtag::scenario::build_scene(&ctx.spec.scene);
    let mut t = Table::new(
        "E25 — beam-scan localization: estimate vs truth",
        &[
            "true_range_ft",
            "true_bearing_deg",
            "est_range_ft",
            "est_bearing_deg",
            "error_ft",
        ],
    );
    let ranges = ctx.spec.values("true_range_ft");
    let bearings = ctx.spec.values("true_bearing_deg");
    for (&feet, &deg) in ranges.iter().zip(&bearings) {
        let (rp, tp) = offset_poses(feet, 0.0, deg);
        let est = locate(&reader, &tag, &scene, rp, tp).expect("in-sector tag");
        t.push_row(&[
            feet,
            deg,
            est.range.feet(),
            est.bearing.degrees(),
            position_error(&est, tp).feet(),
        ]);
    }
    vec![t]
}

/// **E25** — localization accuracy across the sector: position error of
/// the scan-based estimator at each true (range, bearing). Columns:
/// `true_range_ft`, `true_bearing_deg`, `est_range_ft`, `est_bearing_deg`,
/// `error_ft`.
pub fn fig_localization() -> Table {
    FigScenario::new(e25_spec(), e25_body).table()
}

/// **E26** spec: the leak-strength sweep at `bits` Monte-Carlo bits per
/// cell under `seed`.
pub(crate) fn e26_spec(bits: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e26-cancellation",
        "E26 — self-interference cancellation at the waveform level",
    )
    .with_axis(
        "leak_over_signal_db",
        AxisKind::Values(vec![20.0, 30.0, 40.0]),
    )
    .with_trials(bits)
    .with_seed(seed)
}

pub(crate) fn e26_body(ctx: &RunContext) -> Vec<Table> {
    let bits = ctx.spec.trials;
    let modem = OokModem::new(4);
    let adc = AdcClip { full_scale: 4.0 };
    let mut t = Table::new(
        "E26 — self-interference cancellation at the waveform level",
        &["leak_over_signal_db", "ber_no_cancel", "ber_cancelled"],
    );
    for leak_db in ctx.spec.values("leak_over_signal_db") {
        let amplitude = 10f64.powf(leak_db / 20.0);
        let run = |cancel: bool, seed: u64| -> f64 {
            let mut rng = Xoshiro256pp::seed_from(seed);
            let data: Vec<bool> = (0..bits).map(|_| rng.bit()).collect();
            let leakage = LeakageChannel {
                amplitude,
                phase: 0.9,
                drift_per_sample: 1e-8,
            };
            let awgn = Awgn::for_eb_n0(&modem, 12.0);
            let mut quiet = vec![mmtag_rf::Complex::ZERO; 2048];
            leakage.apply(&mut quiet);
            awgn.apply(&mut quiet, &mut rng);
            let mut samples = modem.modulate(&data);
            leakage.apply(&mut samples);
            awgn.apply(&mut samples, &mut rng);
            if cancel {
                let mut c = Canceller::train(&quiet, 1e-3);
                c.cancel(&mut samples);
            }
            adc.apply(&mut samples);
            let soft = modem.soft_bits(&samples);
            data.iter()
                .zip(soft.iter().map(|&s| s > 0.0))
                .filter(|(a, b)| *a != b)
                .count() as f64
                / bits as f64
        };
        t.push_row(&[
            leak_db,
            run(false, ctx.spec.seed),
            run(true, ctx.spec.seed + 1),
        ]);
    }
    vec![t]
}

/// **E26** — waveform-level SI cancellation: measured BER through the
/// clipping ADC with and without the analog canceller, vs leak strength.
/// Columns: `leak_over_signal_db`, `ber_no_cancel`, `ber_cancelled`.
pub fn fig_cancellation(bits: usize, seed: u64) -> Table {
    FigScenario::new(e26_spec(bits, seed), e26_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_rooms_mean_weaker_echoes_and_less_effective_spread() {
        // The (initially counter-intuitive) physics: a larger room makes
        // the wall bounces *longer*, hence much weaker under d⁻⁴ + fixed
        // reflection loss — so the power-weighted RMS spread SHRINKS with
        // room size. Small rooms are the ISI worst case.
        let t = fig_delay_spread();
        let spreads = t.column(1);
        assert!(spreads.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        let echoes = t.column(3);
        assert!(echoes.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        // Even the tightest room keeps echoes ≥ 15 dB down: OOK-benign.
        for row in 0..t.len() {
            assert!(
                t.cell(row, 3) < -15.0,
                "room {} m: echo {}",
                t.cell(row, 0),
                t.cell(row, 3)
            );
        }
        // The conservative Bc rule never clears 2 GHz — documenting that
        // the margin comes from echo weakness, not spread shortness.
        assert!(t.column(4).iter().all(|&f| f == 0.0));
    }

    #[test]
    fn gen2_scales_and_stays_efficient() {
        let t = fig_gen2(33);
        // Commands grow with population; per-tag time stays bounded
        // (the handshake amortizes).
        let cmds = t.column(1);
        assert!(cmds.windows(2).all(|w| w[1] > w[0]));
        let per_tag = t.column(5);
        for &v in &per_tag {
            assert!((10.0..100.0).contains(&v), "per-tag cost {v} µs");
        }
        // The adaptive policy keeps per-tag cost roughly flat with scale.
        let max = per_tag.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_tag.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 3.0, "per-tag spread {min}–{max} µs");
    }

    #[test]
    fn localization_errors_stay_sub_two_feet() {
        let t = fig_localization();
        for row in 0..t.len() {
            assert!(
                t.cell(row, 4) < 2.0,
                "({} ft, {}°): error {} ft",
                t.cell(row, 0),
                t.cell(row, 1),
                t.cell(row, 4)
            );
        }
    }

    #[test]
    fn cancellation_rescues_every_leak_level() {
        let t = fig_cancellation(30_000, 7);
        for row in 0..t.len() {
            let (no, yes) = (t.cell(row, 1), t.cell(row, 2));
            assert!(
                no > 0.1,
                "leak {} dB must break the link: {no}",
                t.cell(row, 0)
            );
            assert!(yes < 0.01, "cancelled BER {yes}");
        }
    }
}
