//! E5: BER vs SNR — validating the paper's "7 dB for BER 10⁻³" table entry.

use crate::scenarios::FigScenario;
use mmtag_phy::ber::{bpsk_ber, ook_coherent_ber, ook_noncoherent_ber, required_eb_n0_db};
use mmtag_phy::waveform::{ber_sweep_par, OokModem};
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E5** spec: the 0–14 dB `Eb/N0` sweep, `bits_per_point` Monte-Carlo
/// bits per SNR point under `seed`.
pub(crate) fn e5_spec(bits_per_point: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e05-ber",
        "E5 — BER vs Eb/N0: theory and measured waveform chain",
    )
    .with_axis(
        "eb_n0_db",
        AxisKind::Linspace {
            start: 0.0,
            stop: 14.0,
            points: 15,
        },
    )
    .with_trials(bits_per_point)
    .with_seed(seed)
}

pub(crate) fn e5_body(ctx: &RunContext) -> Vec<Table> {
    let modem = OokModem::new(4);
    let snrs = ctx.spec.values("eb_n0_db");
    let measured = ber_sweep_par(&modem, &snrs, ctx.spec.trials, true, &ctx.tree);
    let mut t = Table::new(
        "E5 — BER vs Eb/N0: theory and measured waveform chain",
        &[
            "eb_n0_db",
            "bpsk_theory",
            "ook_coh_theory",
            "ook_noncoh_theory",
            "ook_measured",
        ],
    );
    for (&snr_db, &m) in snrs.iter().zip(&measured) {
        let lin = 10f64.powf(snr_db / 10.0);
        t.push_row(&[
            snr_db,
            bpsk_ber(lin),
            ook_coherent_ber(lin),
            ook_noncoherent_ber(lin),
            m,
        ]);
    }
    vec![t, table_required_snr()]
}

/// **E5** — BER vs `Eb/N0`: closed-form curves for antipodal "ASK"/BPSK
/// (the paper's 7 dB reference), coherent OOK and non-coherent OOK, plus
/// the Monte-Carlo measurement of the actual sampled OOK modem. Columns:
/// `eb_n0_db`, `bpsk_theory`, `ook_coh_theory`, `ook_noncoh_theory`,
/// `ook_measured`.
///
/// The measured column runs over [`ber_sweep_par`]: every (SNR point,
/// bit-chunk) pair is an independent work unit of the parallel engine, so
/// the figure is bit-identical at any thread count.
pub fn fig_ber(bits_per_point: usize, seed: u64) -> Table {
    FigScenario::new(e5_spec(bits_per_point, seed), e5_body).table()
}

/// The required `Eb/N0` for BER 10⁻³ per scheme — the "rate table" row the
/// paper cites. Columns: `scheme` (label), `required_db`. Also emitted as
/// the second table of the `e05-ber` scenario.
pub fn table_required_snr() -> Table {
    let mut t = Table::new(
        "E5b — Eb/N0 required for BER 10⁻³ (the paper's 7 dB reference)",
        &["required_db"],
    );
    t.push_labeled_row(
        "ASK/BPSK (antipodal)",
        &[required_eb_n0_db(bpsk_ber, 1e-3).db()],
    );
    t.push_labeled_row(
        "OOK coherent",
        &[required_eb_n0_db(ook_coherent_ber, 1e-3).db()],
    );
    t.push_labeled_row(
        "OOK non-coherent",
        &[required_eb_n0_db(ook_noncoherent_ber, 1e-3).db()],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tracks_theory() {
        let t = fig_ber(100_000, 2024);
        for row in 0..t.len() {
            let theory = t.cell(row, 2);
            let measured = t.cell(row, 4);
            if theory > 5e-4 {
                // Enough errors for a tight relative check.
                assert!(
                    (measured - theory).abs() / theory < 0.25,
                    "at {} dB: measured {measured} vs theory {theory}",
                    t.cell(row, 0)
                );
            } else {
                // Tail: just require the same order of smallness.
                assert!(measured < 2e-3);
            }
        }
    }

    #[test]
    fn paper_7db_reference_holds() {
        let t = table_required_snr();
        let ask = t.cell(0, 0);
        // §8: "ASK modulation requires SNR of 7 dB to achieve BER of 10⁻³".
        assert!((ask - 7.0).abs() < 0.5, "antipodal needs {ask} dB");
        // OOK coherent is 3 dB above; non-coherent above that.
        assert!((t.cell(1, 0) - ask - 3.0).abs() < 0.1);
        assert!(t.cell(2, 0) > t.cell(1, 0));
    }

    #[test]
    fn curves_are_monotone() {
        let t = fig_ber(20_000, 7);
        for col in 1..=3 {
            let c = t.column(col);
            assert!(c.windows(2).all(|w| w[1] < w[0]), "column {col}");
        }
    }
}
