//! E13–E22: extension experiments beyond the paper's evaluation — ablations
//! of the design choices DESIGN.md calls out, and the future-work items
//! implemented as measurable systems.

use crate::scenarios::FigScenario;
use mmtag::prelude::*;
use mmtag::scenario::build_tag;
use mmtag::storage::{average_throughput_bps, bits_per_burst, steady_state_cycle, StorageCap};
use mmtag_antenna::element::Isotropic;
use mmtag_antenna::planar::{Direction, PlanarVanAtta};
use mmtag_antenna::{LinearArray, PatchElement};
use mmtag_channel::fading::{outage_grid_par, OutageCell, RicianFading};
use mmtag_mac::acquisition::{worst_case_latency, SearchMode};
use mmtag_mac::capture::capture_gain;
use mmtag_mac::mimo::mimo_inventory;
use mmtag_mac::ScanSchedule;
use mmtag_mac::SectorScheduler;
use mmtag_phy::bpsk::{measure_bpsk_ber, BpskModem};
use mmtag_phy::pulse::PulseShaper;
use mmtag_phy::spectrum::Spectrum;
use mmtag_phy::waveform::{measure_ber, OokModem};
use mmtag_rf::rng::Xoshiro256pp;
use mmtag_sim::experiment::Table;
use mmtag_sim::scenario::{AxisKind, RunContext, ScenarioSpec};

/// **E13** spec: the channel half-width sweep under `seed`.
pub(crate) fn e13_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e13-spectrum",
        "E13 — OOK waveform spectrum: power captured vs channel half-width",
    )
    .with_axis(
        "half_band_symbol_rates",
        AxisKind::Values(vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]),
    )
    .with_seed(seed)
}

pub(crate) fn e13_body(ctx: &RunContext) -> Vec<Table> {
    let modem = OokModem::new(8);
    let mut rng = Xoshiro256pp::seed_from(ctx.spec.seed);
    let spec = Spectrum::of_ook(&modem, 16384, 1024, &mut rng);
    let mut t = Table::new(
        "E13 — OOK waveform spectrum: power captured vs channel half-width",
        &["half_band_symbol_rates", "power_fraction"],
    );
    for hb in ctx.spec.values("half_band_symbol_rates") {
        t.push_row(&[hb, spec.power_within(hb)]);
    }
    vec![t]
}

/// **E13** — OOK spectrum occupancy: the measurement behind the paper's
/// `symbol rate = B/2` rule. Columns: `half_band_symbol_rates`,
/// `power_fraction`.
pub fn fig_spectrum(seed: u64) -> Table {
    FigScenario::new(e13_spec(seed), e13_body).table()
}

/// **E14** spec: the two impairment sweeps (phase RMS, failed elements).
pub(crate) fn e14_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e14-ablation",
        "E14 — impairment ablation at 25° incidence (6-element tag)",
    )
    .with_axis(
        "line_phase_rms_rad",
        AxisKind::Values(vec![0.0, 0.2, 0.5, 1.0, 1.5]),
    )
    .with_axis(
        "failed_elements",
        AxisKind::Values(vec![0.0, 1.0, 2.0, 3.0]),
    )
}

pub(crate) fn e14_body(ctx: &RunContext) -> Vec<Table> {
    let elements = ctx.spec.tag.elements;
    let ideal_tag = || {
        let mut v = mmtag_antenna::VanAttaArray::new(
            LinearArray::half_wavelength(elements),
            Isotropic,
            ReflectorWiring::VanAtta,
        );
        v.set_line_loss(Db::ZERO);
        v
    };
    let probe = Angle::from_degrees(25.0);
    let ideal_gain = ideal_tag().monostatic_gain(probe);

    let mut t = Table::new(
        "E14 — impairment ablation at 25° incidence (6-element tag)",
        &["value", "retro_gain_db", "loss_vs_ideal_db"],
    );

    // Line phase errors: deterministic pseudo-random with growing RMS.
    for rms in ctx.spec.values("line_phase_rms_rad") {
        let mut v = ideal_tag();
        // Fixed error shape scaled to the requested RMS.
        let shape = [0.9f64, -1.1, 0.6];
        let norm: f64 = (shape.iter().map(|s| s * s).sum::<f64>() / 3.0).sqrt();
        let phases: Vec<f64> = shape.iter().map(|s| s / norm * rms).collect();
        v.set_line_phases(&phases);
        let g = v.monostatic_gain(probe);
        t.push_labeled_row(
            "line_phase_rms_rad",
            &[
                rms,
                Db::from_linear(g).db(),
                Db::from_linear(ideal_gain / g).db(),
            ],
        );
    }

    // Element failures.
    for failed in ctx.spec.values("failed_elements") {
        let failed = failed as usize;
        let mut v = ideal_tag();
        v.set_off_state_leakage(Db::new(-60.0));
        for k in 0..failed {
            v.fail_element(k);
        }
        let g = v.monostatic_gain(probe);
        t.push_labeled_row(
            "failed_elements",
            &[
                failed as f64,
                Db::from_linear(g).db(),
                Db::from_linear(ideal_gain / g).db(),
            ],
        );
    }
    vec![t]
}

/// **E14** — fabrication ablation: retro gain vs per-pair line phase error
/// (RMS radians) and vs failed elements, for the 6-element tag. Columns:
/// `impairment` (label), `value`, `retro_gain_db`, `loss_vs_ideal_db`.
pub fn fig_ablation() -> Table {
    FigScenario::new(e14_spec(), e14_body).table()
}

/// **E15** spec: the K-factor sweep at `trials` Monte-Carlo draws per cell.
pub(crate) fn e15_spec(trials: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e15-fading",
        "E15 — Rician fading: outage probability vs K-factor and margin",
    )
    .with_axis("k_db", AxisKind::Values(vec![0.0, 5.0, 10.0, 15.0]))
    .with_trials(trials)
    .with_seed(seed)
}

pub(crate) fn e15_body(ctx: &RunContext) -> Vec<Table> {
    // All (K, margin) cells go into ONE flattened (cell × chunk) work
    // grid, so the whole sweep saturates the worker budget instead of
    // parallelizing one cell at a time. Each cell keeps its own SeedTree
    // subtree — the exact streams the per-cell loop used — so the table
    // is bit-identical at any thread count and to the pre-grid code.
    let cells: Vec<OutageCell> = ctx
        .spec
        .values("k_db")
        .into_iter()
        .enumerate()
        .flat_map(|(i, k_db)| {
            let fader = RicianFading::from_k_db(Db::new(k_db));
            [("outage-3db", 3.0), ("outage-7db", 7.0)].map(|(label, margin)| OutageCell {
                fader,
                margin: Db::new(margin),
                tree: ctx.tree.subtree_indexed(label, i as u64),
            })
        })
        .collect();
    let outage = outage_grid_par(&cells, ctx.spec.trials);
    let mut t = Table::new(
        "E15 — Rician fading: outage probability vs K-factor and margin",
        &["k_db", "outage_3db_margin", "outage_7db_margin"],
    );
    for (i, k_db) in ctx.spec.values("k_db").into_iter().enumerate() {
        t.push_row(&[k_db, outage[2 * i], outage[2 * i + 1]]);
    }
    vec![t]
}

/// **E15** — fading margin: outage probability at each Fig. 7 rate rung
/// under Rician fading, vs K-factor. Columns: `k_db`,
/// `outage_3db_margin`, `outage_7db_margin`.
pub fn fig_fading(trials: usize, seed: u64) -> Table {
    FigScenario::new(e15_spec(trials, seed), e15_body).table()
}

/// **E16** spec: the 3–11 dB `Eb/N0` sweep at `bits` per point.
pub(crate) fn e16_spec(bits: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e16-bpsk",
        "E16 — BPSK backscatter vs OOK: measured BER at equal Eb/N0",
    )
    .with_axis(
        "eb_n0_db",
        AxisKind::Linspace {
            start: 3.0,
            stop: 11.0,
            points: 5,
        },
    )
    .with_trials(bits)
    .with_seed(seed)
}

pub(crate) fn e16_body(ctx: &RunContext) -> Vec<Table> {
    let mut rng = Xoshiro256pp::seed_from(ctx.spec.seed);
    let ook = OokModem::new(4);
    let bpsk = BpskModem::new(4);
    let mut t = Table::new(
        "E16 — BPSK backscatter vs OOK: measured BER at equal Eb/N0",
        &["eb_n0_db", "ook_ber", "bpsk_ber"],
    );
    for snr in ctx.spec.values("eb_n0_db") {
        t.push_row(&[
            snr,
            measure_ber(&ook, snr, ctx.spec.trials, true, &mut rng),
            measure_bpsk_ber(&bpsk, snr, ctx.spec.trials, &mut rng),
        ]);
    }
    vec![t]
}

/// **E16** — BPSK backscatter vs OOK: measured BER at equal Eb/N0 and the
/// range each scheme's threshold buys. Columns: `eb_n0_db`, `ook_ber`,
/// `bpsk_ber`.
pub fn fig_bpsk(bits: usize, seed: u64) -> Table {
    FigScenario::new(e16_spec(bits, seed), e16_body).table()
}

/// **E17** spec: zipped az/el offset axes (row `i` pairs
/// `theta_deg[i]` with `phi_deg[i]`).
pub(crate) fn e17_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e17-planar",
        "E17 — planar vs linear Van Atta: gain at az/el offsets",
    )
    .with_axis(
        "theta_deg",
        AxisKind::Values(vec![0.0, 30.0, 30.0, 30.0, 50.0]),
    )
    .with_axis(
        "phi_deg",
        AxisKind::Values(vec![0.0, 0.0, 90.0, 45.0, 45.0]),
    )
}

pub(crate) fn e17_body(ctx: &RunContext) -> Vec<Table> {
    let planar = PlanarVanAtta::new(6, 4, 0.5, 0.5, PatchElement::mmtag_default());
    let linear = PlanarVanAtta::new(6, 1, 0.5, 0.5, PatchElement::mmtag_default());
    let mut t = Table::new(
        "E17 — planar vs linear Van Atta: gain at az/el offsets",
        &["theta_deg", "phi_deg", "planar_db", "linear_db"],
    );
    let thetas = ctx.spec.values("theta_deg");
    let phis = ctx.spec.values("phi_deg");
    for (&th, &ph) in thetas.iter().zip(&phis) {
        let d = Direction::from_spherical(Angle::from_degrees(th), Angle::from_degrees(ph));
        t.push_row(&[
            th,
            ph,
            Db::from_linear(planar.monostatic_gain(d)).db(),
            Db::from_linear(linear.monostatic_gain(d)).db(),
        ]);
    }
    vec![t]
}

/// **E17** — planar (6 × 4) vs linear (6 × 1) tag: monostatic gain at
/// combined azimuth/elevation offsets. Columns: `theta_deg`, `phi_deg`,
/// `planar_db`, `linear_db`.
///
/// Physics note: a single-row Van Atta is *already* phase-coherent for
/// pure-elevation offsets (all elements see the same phase — the
/// re-radiation is a fan beam), so the row keeps its gain at every angle
/// too. What the second dimension buys is aperture: `Ny²` more round-trip
/// gain (+12 dB for Ny = 4) at *every* angle, with retrodirectivity
/// preserved — that is the upgrade path §8 alludes to ("more antenna
/// elements"), realized in 2-D.
pub fn fig_planar() -> Table {
    FigScenario::new(e17_spec(), e17_body).table()
}

/// **E18** spec: the capacitor-size sweep.
pub(crate) fn e18_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e18-storage",
        "E18 — capacitor-buffered bursts at 1 Gbps on 100 µW solar",
    )
    .with_axis(
        "cap_uf",
        AxisKind::Values(vec![10.0, 47.0, 100.0, 470.0, 1000.0]),
    )
}

pub(crate) fn e18_body(ctx: &RunContext) -> Vec<Table> {
    let tag = build_tag(&ctx.spec.tag);
    let budget = EnergyBudget::for_tag(&tag, DataRate::from_gbps(1.0));
    let solar = Harvester::IndoorSolar { area_cm2: 10.0 };
    let mut t = Table::new(
        "E18 — capacitor-buffered bursts at 1 Gbps on 100 µW solar",
        &[
            "cap_uf",
            "burst_ms",
            "bits_per_burst_mbit",
            "avg_throughput_mbps",
        ],
    );
    for cap_uf in ctx.spec.values("cap_uf") {
        let cap = StorageCap::new(cap_uf * 1e-6, 1.8, 3.3);
        let cycle = steady_state_cycle(&budget, solar, &cap).expect("solar carries logic");
        t.push_row(&[
            cap_uf,
            cycle.burst.as_secs_f64() * 1e3,
            bits_per_burst(&cycle, 1e9) / 1e6,
            average_throughput_bps(&cycle, 1e9) / 1e6,
        ]);
    }
    vec![t]
}

/// **E18** — burst operation: bits per burst and average throughput vs
/// capacitor size under a 10 cm² solar harvester at 1 Gbps. Columns:
/// `cap_uf`, `burst_ms`, `bits_per_burst_mbit`, `avg_throughput_mbps`.
pub fn fig_storage() -> Table {
    FigScenario::new(e18_spec(), e18_body).table()
}

/// **E19** spec: the beamwidth sweep.
pub(crate) fn e19_spec() -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e19-acquisition",
        "E19 — worst-case beam acquisition: retrodirective vs two-sided",
    )
    .with_axis(
        "beamwidth_deg",
        AxisKind::Values(vec![30.0, 20.0, 10.0, 5.0]),
    )
}

pub(crate) fn e19_body(ctx: &RunContext) -> Vec<Table> {
    let mut t = Table::new(
        "E19 — worst-case beam acquisition: retrodirective vs two-sided",
        &[
            "beamwidth_deg",
            "positions",
            "one_sided_ms",
            "two_sided_ms",
            "speedup",
        ],
    );
    for bw in ctx.spec.values("beamwidth_deg") {
        let scan = ScanSchedule::new(
            Angle::from_degrees(120.0),
            Angle::from_degrees(bw),
            Duration::from_millis(1),
        );
        let n = scan.positions();
        let one = worst_case_latency(&scan, SearchMode::OneSided);
        let two = worst_case_latency(&scan, SearchMode::TwoSided { node_positions: n });
        t.push_row(&[
            bw,
            n as f64,
            one.as_secs_f64() * 1e3,
            two.as_secs_f64() * 1e3,
            two.as_secs_f64() / one.as_secs_f64(),
        ]);
    }
    vec![t]
}

/// **E19** — acquisition latency: one-sided (mmTag) vs two-sided
/// (conventional pair) beam search, vs beamwidth. Columns: `beamwidth_deg`,
/// `positions`, `one_sided_ms`, `two_sided_ms`, `speedup`.
pub fn fig_acquisition() -> Table {
    FigScenario::new(e19_spec(), e19_body).table()
}

/// **E20** spec: the roll-off sweep (the hard-switching "rect" row is part
/// of the body) under `seed`.
pub(crate) fn e20_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e20-pulse",
        "E20 — raised-cosine shaped OOK: confinement and admissible rate",
    )
    .with_axis("beta", AxisKind::Values(vec![0.1, 0.35, 0.5, 1.0]))
    .with_seed(seed)
}

pub(crate) fn e20_body(ctx: &RunContext) -> Vec<Table> {
    let sps = 8;
    let mut rng = Xoshiro256pp::seed_from(ctx.spec.seed);
    let bits: Vec<bool> = (0..4096)
        .map(|_| mmtag_rf::rng::Rng::bit(&mut rng))
        .collect();
    let modem = OokModem::new(sps);
    let mut t = Table::new(
        "E20 — raised-cosine shaped OOK: confinement and admissible rate",
        &["beta", "power_in_channel", "rate_in_2ghz_gbps"],
    );
    // One Welch plan for the whole sweep: every row shares the same FFT
    // size, so the twiddle/bit-reversal tables are built exactly once.
    let plan = mmtag_rf::fft::WelchPlan::new(1024);
    // Hard switching row (β = "rect"): channel ±1 symbol rate (B/2 rule).
    let rect = Spectrum::of_samples_with_plan(&plan, &modem.modulate(&bits), sps);
    t.push_labeled_row("rect", &[f64::NAN, rect.power_within(1.0), 1.0]);
    for beta in ctx.spec.values("beta") {
        let shaped = PulseShaper::new(beta, 8, sps).shape_ook(&modem, &bits);
        let spec = Spectrum::of_samples_with_plan(&plan, &shaped, sps);
        // Shaped signal occupies ±(1+β)/2 symbol rates ⇒ in a fixed 2 GHz
        // channel the symbol rate is 2 GHz/(1+β).
        let half_channel = (1.0 + beta) / 2.0;
        t.push_labeled_row(
            "shaped",
            &[beta, spec.power_within(half_channel), 2.0 / (1.0 + beta)],
        );
    }
    vec![t]
}

/// **E20** — pulse shaping: spectrum confinement of raised-cosine OOK vs
/// hard switching, and the rate the same channel then admits. Columns:
/// `beta`, `power_in_channel`, `rate_in_2ghz_gbps`.
///
/// The channel is the paper's 2 GHz band; hard switching needs the `B/2`
/// rule (1 Gbps), shaped OOK runs at `B/(1+β)`.
pub fn fig_pulse(seed: u64) -> Table {
    FigScenario::new(e20_spec(seed), e20_body).table()
}

/// **E21** spec: the population sweep at `trials` rounds per point.
pub(crate) fn e21_spec(trials: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e21-capture",
        "E21 — capture effect on framed Aloha (d⁻⁴ power spread, 7 dB threshold)",
    )
    .with_axis("tags", AxisKind::Values(vec![8.0, 32.0, 128.0]))
    .with_trials(trials)
    .with_seed(seed)
}

pub(crate) fn e21_body(ctx: &RunContext) -> Vec<Table> {
    let mut rng = Xoshiro256pp::seed_from(ctx.spec.seed);
    let mut t = Table::new(
        "E21 — capture effect on framed Aloha (d⁻⁴ power spread, 7 dB threshold)",
        &["tags", "with_capture", "without_capture", "gain_pct"],
    );
    for v in ctx.spec.values("tags") {
        let n = v as usize;
        let (with, without) = capture_gain(n, Db::new(7.0), ctx.spec.trials, &mut rng);
        t.push_row(&[n as f64, with, without, (with / without - 1.0) * 100.0]);
    }
    vec![t]
}

/// **E21** — the capture effect: single-round read fraction with and
/// without capture, vs population, for the backscatter d⁻⁴ power spread.
/// Columns: `tags`, `with_capture`, `without_capture`, `gain_pct`.
pub fn fig_capture(trials: usize, seed: u64) -> Table {
    FigScenario::new(e21_spec(trials, seed), e21_body).table()
}

/// **E22** spec: the simultaneous-beam sweep under `seed`.
pub(crate) fn e22_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::paper_link(
        "e22-mimo",
        "E22 — multi-beam (MIMO) inventory: makespan vs beam count",
    )
    .with_axis("beams", AxisKind::Values(vec![1.0, 2.0, 4.0, 8.0, 12.0]))
    .with_seed(seed)
}

pub(crate) fn e22_body(ctx: &RunContext) -> Vec<Table> {
    let scan = ScanSchedule::new(
        Angle::from_degrees(120.0),
        Angle::from_degrees(20.0),
        Duration::from_millis(1),
    );
    let angles: Vec<Angle> = (0..240)
        .map(|i| Angle::from_degrees(-55.0 + 110.0 * i as f64 / 239.0))
        .collect();
    let part = SectorScheduler::partition(scan, &angles);
    let mut t = Table::new(
        "E22 — multi-beam (MIMO) inventory: makespan vs beam count",
        &["beams", "makespan_slots", "speedup"],
    );
    for v in ctx.spec.values("beams") {
        let k = v as usize;
        let mut rng = Xoshiro256pp::seed_from(ctx.spec.seed);
        let inv = mimo_inventory(&part, k, &mut rng);
        assert_eq!(inv.tags_read, 240);
        t.push_row(&[k as f64, inv.makespan() as f64, inv.speedup()]);
    }
    vec![t]
}

/// **E22** — §9's MIMO beams: inventory makespan vs number of simultaneous
/// beams for a 240-tag sector population. Columns: `beams`, `makespan_slots`,
/// `speedup`.
pub fn fig_mimo(seed: u64) -> Table {
    FigScenario::new(e22_spec(seed), e22_body).table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_occupancy_monotone_and_b2_rule_holds() {
        let t = fig_spectrum(7);
        let fracs = t.column(1);
        assert!(fracs.windows(2).all(|w| w[1] >= w[0]));
        // ±1 symbol rate (the B/2 rule) captures ≥ 85%.
        let row = t.find_row(0, 1.0, 1e-9).unwrap();
        assert!(t.cell(row, 1) >= 0.85);
    }

    #[test]
    fn ablation_degrades_gracefully() {
        let t = fig_ablation();
        // Phase-error rows: loss grows with RMS; 0.2 rad RMS costs < 1 dB
        // (fabrication tolerance is benign), 1.5 rad costs > 3 dB.
        let phase_rows: Vec<usize> = (0..t.len())
            .filter(|&i| t.label(i) == "line_phase_rms_rad")
            .collect();
        let losses: Vec<f64> = phase_rows.iter().map(|&i| t.cell(i, 2)).collect();
        assert!(losses.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(losses[1] < 1.0, "0.2 rad RMS costs {}", losses[1]);
        assert!(*losses.last().unwrap() > 3.0);
        // Element failures: each failure costs gain, the first ~1.9 dB
        // (losing 2 of 12 radiating paths through the pair).
        let fail_rows: Vec<usize> = (0..t.len())
            .filter(|&i| t.label(i) == "failed_elements")
            .collect();
        let fl: Vec<f64> = fail_rows.iter().map(|&i| t.cell(i, 2)).collect();
        assert!(fl[0].abs() < 1e-9);
        assert!(fl.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn fading_outage_falls_with_k_and_margin() {
        let t = fig_fading(40_000, 3);
        let o3 = t.column(1);
        let o7 = t.column(2);
        // More margin ⇒ less outage, at every K.
        for (a, b) in o3.iter().zip(&o7) {
            assert!(b <= a);
        }
        // Stronger LOS ⇒ less outage.
        assert!(o7.windows(2).all(|w| w[1] <= w[0] + 1e-3));
        // At K = 10 dB (aligned mmWave) a 7 dB margin leaves ≪ 1% outage.
        let row = t.find_row(0, 10.0, 1e-9).unwrap();
        assert!(t.cell(row, 2) < 0.01, "outage {}", t.cell(row, 2));
    }

    #[test]
    fn bpsk_always_beats_ook() {
        let t = fig_bpsk(100_000, 5);
        for row in 0..t.len() {
            let (ook, bpsk) = (t.cell(row, 1), t.cell(row, 2));
            if ook > 1e-4 {
                assert!(bpsk < ook, "at {} dB: {bpsk} !< {ook}", t.cell(row, 0));
            }
        }
    }

    #[test]
    fn planar_adds_ny_squared_gain_everywhere_and_keeps_retro() {
        let t = fig_planar();
        // The Ny = 4 column buys 10·log10(4²) ≈ 12 dB of round-trip gain
        // at EVERY offset — azimuth, elevation, or skew — while both
        // arrays stay retrodirective (the row is a fan beam in elevation).
        let expected = 10.0 * (4.0f64 * 4.0).log10();
        for row in 0..t.len() {
            let gap = t.cell(row, 2) - t.cell(row, 3);
            assert!(
                (gap - expected).abs() < 0.5,
                "({}, {}): gap {gap} dB",
                t.cell(row, 0),
                t.cell(row, 1)
            );
        }
        // And both roll off with polar angle only via the element pattern:
        // the 50° skew row sits below the 30° rows for both arrays.
        let g30 = t.cell(1, 2);
        let g50 = t.cell(4, 2);
        assert!(g50 < g30);
    }

    #[test]
    fn storage_scales_bursts_not_throughput() {
        let t = fig_storage();
        let bursts = t.column(1);
        assert!(bursts.windows(2).all(|w| w[1] > w[0]));
        let tput = t.column(3);
        let spread = tput.iter().cloned().fold(f64::MIN, f64::max)
            - tput.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.0, "avg throughput must not depend on cap size");
        // 100 µF row: ≥ 1 Mbit per burst.
        let row = t.find_row(0, 100.0, 1e-9).unwrap();
        assert!(t.cell(row, 2) >= 1.0);
    }

    /// Golden pin of E20's spectrum column under the radix-4 Welch path
    /// (nfft = 1024 is a power of 4, so this is the kernel every
    /// spectrum experiment actually runs — see DESIGN.md §11). The pin
    /// is to 1e-12 absolute on O(1) power fractions: ~4 orders looser
    /// than the radix-4-vs-radix-2 ulp spread, ~10 orders tighter than
    /// any butterfly or twiddle mistake. A deliberate kernel change that
    /// moves these values must re-pin them here.
    #[test]
    fn pulse_spectrum_golden_pin() {
        let t = fig_pulse(3);
        let golden = [
            0.907_819_395_549_296_4,
            0.999_810_917_139_428_8,
            0.999_999_379_284_025_5,
            0.999_999_827_581_828_5,
            0.999_999_993_707_975_8,
        ];
        assert_eq!(t.len(), golden.len());
        for (row, want) in golden.iter().enumerate() {
            let got = t.cell(row, 1);
            assert!(
                (got - want).abs() < 1e-12,
                "row {row}: power_in_channel {got:.17} vs pinned {want:.17}"
            );
        }
    }

    #[test]
    fn pulse_shaping_buys_rate() {
        let t = fig_pulse(3);
        // Every shaped row confines ≥ 99% into its channel…
        for row in 1..t.len() {
            assert!(
                t.cell(row, 1) > 0.98,
                "β={}: {}",
                t.cell(row, 0),
                t.cell(row, 1)
            );
        }
        // …and admits at least the rect baseline's 1 Gbps — strictly more
        // for any roll-off below 1 (β = 1 degenerates to the B/2 rule).
        for row in 1..t.len() {
            let beta = t.cell(row, 0);
            if beta < 1.0 {
                assert!(t.cell(row, 2) > 1.0);
            } else {
                assert!(t.cell(row, 2) >= 1.0 - 1e-12);
            }
        }
        // β = 0.35: ~1.48 Gbps in the same 2 GHz channel.
        let row = t.find_row(0, 0.35, 1e-9).unwrap();
        assert!((t.cell(row, 2) - 1.481).abs() < 0.01);
    }

    #[test]
    fn capture_gain_is_positive_and_grows_with_contention() {
        let t = fig_capture(300, 4);
        for row in 0..t.len() {
            assert!(t.cell(row, 1) > t.cell(row, 2), "capture must help");
            assert!(t.cell(row, 3) > 0.0);
        }
    }

    #[test]
    fn mimo_speedup_scales_then_saturates() {
        let t = fig_mimo(7);
        let speedups = t.column(2);
        assert!((speedups[0] - 1.0).abs() < 1e-9);
        assert!(speedups.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        // At K = 12 (one beam per sector) the speedup is bounded by the
        // largest sector's share but still well above 4×.
        assert!(
            *speedups.last().unwrap() > 4.0,
            "K=12 speedup {}",
            speedups.last().unwrap()
        );
    }

    #[test]
    fn acquisition_speedup_equals_positions() {
        let t = fig_acquisition();
        for row in 0..t.len() {
            let n = t.cell(row, 1);
            let speedup = t.cell(row, 4);
            assert!((speedup - n).abs() < 1e-9, "speedup {speedup} vs N {n}");
        }
        // Narrower beams widen the gap — the paper's point that searching
        // gets *harder* exactly when mmWave needs narrow beams.
        let sp = t.column(4);
        assert!(sp.windows(2).all(|w| w[1] > w[0]));
    }
}
