//! A zero-dependency micro-benchmark harness: warmup, auto-calibrated
//! iteration counts, best-of-N rounds, and a hand-rolled JSON report.
//!
//! This replaces the external Criterion dependency so the workspace builds
//! offline. It is deliberately simple — wall-clock `std::time::Instant`,
//! minimum-of-rounds (the standard low-noise estimator for CPU-bound
//! kernels), no statistics beyond that — but it is enough to (a) catch
//! order-of-magnitude regressions in the hot paths and (b) measure the
//! serial-vs-parallel speedup of the Monte-Carlo engine, which is this
//! crate's headline number (`BENCH_report.json`).

use std::time::Instant;

/// One benchmark's outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (stable key in the JSON report).
    pub name: String,
    /// Iterations per timing round after calibration.
    pub iters: u64,
    /// Best observed nanoseconds per iteration (min over rounds).
    pub ns_per_iter: f64,
}

impl BenchResult {
    /// Speedup of `self` over `other` (how many times faster `self` is):
    /// `other.ns_per_iter / self.ns_per_iter`.
    pub fn speedup_over(&self, other: &BenchResult) -> f64 {
        other.ns_per_iter / self.ns_per_iter
    }
}

/// Target wall time per timing round. Short enough that the full suite
/// stays in seconds, long enough to amortize timer overhead.
const TARGET_ROUND_NANOS: u128 = 80_000_000;
/// Timing rounds; the minimum is reported.
const ROUNDS: usize = 5;
/// Iteration ceiling, so trivially cheap closures can't spin forever
/// during calibration.
const MAX_ITERS: u64 = 1 << 24;

/// Runs `f` under the harness: one calibration pass sizes the iteration
/// count toward [`TARGET_ROUND_NANOS`], then [`ROUNDS`] timed rounds run
/// and the fastest is reported. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> BenchResult {
    // Calibration: double iterations until a round is long enough.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = t.elapsed().as_nanos();
        if elapsed >= TARGET_ROUND_NANOS / 2 || iters >= MAX_ITERS {
            break;
        }
        // Aim straight for the target when we have signal; else double.
        iters = if elapsed > 0 {
            (iters.saturating_mul(TARGET_ROUND_NANOS.div_ceil(elapsed) as u64))
                .clamp(iters + 1, iters.saturating_mul(16).min(MAX_ITERS))
        } else {
            (iters * 16).min(MAX_ITERS)
        };
    }

    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    BenchResult {
        name: name.to_string(),
        iters,
        ns_per_iter: best,
    }
}

/// Formats a result as the one-line summary the bench binaries print.
pub fn format_result(r: &BenchResult) -> String {
    format!(
        "{:<40} {:>14.1} ns/iter   ({} iters/round)",
        r.name, r.ns_per_iter, r.iters
    )
}

/// Serializes results plus named speedup ratios into a JSON object string
/// (hand-rolled — no serde): `{"benches": {name: ns_per_iter, ...},
/// "speedups": {name: ratio, ...}, "threads": N}`.
pub fn report_json(results: &[BenchResult], speedups: &[(String, f64)], threads: usize) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"threads\": ");
    out.push_str(&threads.to_string());
    out.push_str(",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"ns_per_iter\": {:.1}, \"iters\": {}}}{}\n",
            esc(&r.name),
            r.ns_per_iter,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"speedups\": {\n");
    for (i, (name, ratio)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            esc(name),
            ratio,
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let r = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iters >= 1);
    }

    #[test]
    fn json_report_shape() {
        let results = vec![
            BenchResult {
                name: "a".into(),
                iters: 10,
                ns_per_iter: 123.4,
            },
            BenchResult {
                name: "b\"q\"".into(),
                iters: 5,
                ns_per_iter: 5.0,
            },
        ];
        let json = report_json(&results, &[("a_vs_b".into(), 2.5)], 4);
        assert!(json.contains("\"a\": {\"ns_per_iter\": 123.4"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"a_vs_b\": 2.500"));
        assert!(json.contains("\"threads\": 4"));
    }

    #[test]
    fn speedup_ratio_orientation() {
        let fast = BenchResult {
            name: "fast".into(),
            iters: 1,
            ns_per_iter: 10.0,
        };
        let slow = BenchResult {
            name: "slow".into(),
            iters: 1,
            ns_per_iter: 40.0,
        };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }
}
