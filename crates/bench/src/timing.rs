//! A zero-dependency micro-benchmark harness: warmup, auto-calibrated
//! iteration counts, best-of-N rounds, and a hand-rolled JSON report.
//!
//! This replaces the external Criterion dependency so the workspace builds
//! offline. It is deliberately simple — wall-clock `std::time::Instant`,
//! minimum-of-rounds (the standard low-noise estimator for CPU-bound
//! kernels), no statistics beyond that — but it is enough to (a) catch
//! order-of-magnitude regressions in the hot paths and (b) measure the
//! serial-vs-parallel speedup of the Monte-Carlo engine, which is this
//! crate's headline number (`BENCH_report.json`).

use std::time::Instant;

/// One benchmark's outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (stable key in the JSON report).
    pub name: String,
    /// Iterations per timing round after calibration.
    pub iters: u64,
    /// Best observed nanoseconds per iteration (min over rounds).
    pub ns_per_iter: f64,
}

impl BenchResult {
    /// Speedup of `self` over `other` (how many times faster `self` is):
    /// `other.ns_per_iter / self.ns_per_iter`.
    pub fn speedup_over(&self, other: &BenchResult) -> f64 {
        other.ns_per_iter / self.ns_per_iter
    }
}

/// Target wall time per timing round. Short enough that the full suite
/// stays in seconds, long enough to amortize timer overhead.
const TARGET_ROUND_NANOS: u128 = 80_000_000;
/// Timing rounds; the minimum is reported.
const ROUNDS: usize = 5;
/// Iteration ceiling, so trivially cheap closures can't spin forever
/// during calibration.
const MAX_ITERS: u64 = 1 << 24;

/// Runs `f` under the harness: one calibration pass sizes the iteration
/// count toward `TARGET_ROUND_NANOS`, then `ROUNDS` timed rounds run
/// and the fastest is reported. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, f: F) -> BenchResult {
    bench_with(name, TARGET_ROUND_NANOS, ROUNDS, f)
}

/// [`bench()`] with explicit round budget and round count. The CI quick mode
/// (`bench_report --quick`, run by `scripts/check.sh`) uses a small target
/// so the full report finishes in a couple of seconds — the resulting
/// numbers are noisier but the pipeline (and the JSON artifact) is
/// exercised end to end on every check.
pub fn bench_with<R, F: FnMut() -> R>(
    name: &str,
    target_round_nanos: u128,
    rounds: usize,
    mut f: F,
) -> BenchResult {
    // Calibration: double iterations until a round is long enough.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = t.elapsed().as_nanos();
        if elapsed >= target_round_nanos / 2 || iters >= MAX_ITERS {
            break;
        }
        // Aim straight for the target when we have signal; else double.
        iters = if elapsed > 0 {
            (iters.saturating_mul(target_round_nanos.div_ceil(elapsed) as u64))
                .clamp(iters + 1, iters.saturating_mul(16).min(MAX_ITERS))
        } else {
            (iters * 16).min(MAX_ITERS)
        };
    }

    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    BenchResult {
        name: name.to_string(),
        iters,
        ns_per_iter: best,
    }
}

/// Formats a result as the one-line summary the bench binaries print.
pub fn format_result(r: &BenchResult) -> String {
    format!(
        "{:<40} {:>14.1} ns/iter   ({} iters/round)",
        r.name, r.ns_per_iter, r.iters
    )
}

/// Serializes results plus named speedup ratios into a JSON object string
/// (hand-rolled — no serde): `{"benches": {name: ns_per_iter, ...},
/// "speedups": {name: ratio, ...}, "spans": {name: {...}, ...},
/// "threads": N}`.
///
/// `spans` carries the observability span breakdown recorded while the
/// kernels ran under [`mmtag_rf::obs::Level::Trace`] (empty when nothing
/// was traced) — `bench_report` uses it to annotate the report with
/// per-stage timings alongside the end-to-end numbers.
pub fn report_json(
    results: &[BenchResult],
    speedups: &[(String, f64)],
    threads: usize,
    spans: &[mmtag_rf::obs::SpanStat],
) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"threads\": ");
    out.push_str(&threads.to_string());
    out.push_str(",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"ns_per_iter\": {:.1}, \"iters\": {}}}{}\n",
            esc(&r.name),
            r.ns_per_iter,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"speedups\": {\n");
    for (i, (name, ratio)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            esc(name),
            ratio,
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"spans\": {\n");
    for (i, s) in spans.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"total_us\": {:.3}, \"max_us\": {:.3}}}{}\n",
            esc(&s.name),
            s.count,
            s.total_us,
            s.max_us,
            if i + 1 < spans.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Validates that `s` is one well-formed JSON value (the whole string,
/// modulo surrounding whitespace). A minimal recursive-descent checker —
/// no DOM, no serde — used by `bench_report --verify` and `scripts/check.sh`
/// to guarantee the committed `BENCH_report.json` never goes stale or
/// corrupt without CI noticing.
pub fn validate_json(s: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err(&self, what: &str) -> String {
            format!("{what} at byte {}", self.i)
        }
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.literal(b"true"),
                Some(b'f') => self.literal(b"false"),
                Some(b'n') => self.literal(b"null"),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }
        fn literal(&mut self, lit: &[u8]) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(self.err("bad literal"))
            }
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            let digits = |p: &mut Self| {
                let s = p.i;
                while matches!(p.b.get(p.i), Some(b'0'..=b'9')) {
                    p.i += 1;
                }
                p.i > s
            };
            if !digits(self) {
                return Err(self.err("expected digits"));
            }
            if self.b.get(self.i) == Some(&b'.') {
                self.i += 1;
                if !digits(self) {
                    return Err(self.err("expected fraction digits"));
                }
            }
            if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                if !digits(self) {
                    return Err(self.err("expected exponent digits"));
                }
            }
            debug_assert!(self.i > start);
            Ok(())
        }
        fn string(&mut self) -> Result<(), String> {
            self.i += 1; // opening quote
            loop {
                match self.b.get(self.i) {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(());
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 1
                            }
                            Some(b'u') => {
                                self.i += 1;
                                for _ in 0..4 {
                                    if !matches!(
                                        self.b.get(self.i),
                                        Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                    ) {
                                        return Err(self.err("bad \\u escape"));
                                    }
                                    self.i += 1;
                                }
                            }
                            _ => return Err(self.err("bad escape")),
                        }
                    }
                    Some(_) => self.i += 1,
                }
            }
        }
        fn object(&mut self) -> Result<(), String> {
            self.i += 1; // '{'
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                if self.b.get(self.i) != Some(&b'"') {
                    return Err(self.err("expected object key"));
                }
                self.string()?;
                self.ws();
                if self.b.get(self.i) != Some(&b':') {
                    return Err(self.err("expected ':'"));
                }
                self.i += 1;
                self.value()?;
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        fn array(&mut self) -> Result<(), String> {
            self.i += 1; // '['
            self.ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value()?;
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i != s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let r = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iters >= 1);
    }

    #[test]
    fn json_report_shape() {
        let results = vec![
            BenchResult {
                name: "a".into(),
                iters: 10,
                ns_per_iter: 123.4,
            },
            BenchResult {
                name: "b\"q\"".into(),
                iters: 5,
                ns_per_iter: 5.0,
            },
        ];
        let spans = vec![mmtag_rf::obs::SpanStat {
            name: "phy.ber.chunk".into(),
            count: 12,
            total_us: 340.5,
            max_us: 99.25,
        }];
        let json = report_json(&results, &[("a_vs_b".into(), 2.5)], 4, &spans);
        assert!(json.contains("\"a\": {\"ns_per_iter\": 123.4"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"a_vs_b\": 2.500"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"phy.ber.chunk\": {\"count\": 12"));
        validate_json(&json).unwrap();
    }

    #[test]
    fn validate_json_accepts_the_report_shape_and_valid_documents() {
        let json = report_json(
            &[BenchResult {
                name: "k".into(),
                iters: 3,
                ns_per_iter: 1.5,
            }],
            &[("k_speedup".into(), 2.0)],
            8,
            &[],
        );
        validate_json(&json).unwrap();
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#""a \"quoted\" é string""#,
            r#"{"a": [1, {"b": null}, true], "c": "d"}"#,
            "  {\n}\t",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn validate_json_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "01x",
            "1.",
            "1e",
            "{\"a\" 1}",
            "{} trailing",
            "nul",
            r#""bad \q escape""#,
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn speedup_ratio_orientation() {
        let fast = BenchResult {
            name: "fast".into(),
            iters: 1,
            ns_per_iter: 10.0,
        };
        let slow = BenchResult {
            name: "slow".into(),
            iters: 1,
            ns_per_iter: 40.0,
        };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }
}
