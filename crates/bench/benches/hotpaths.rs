//! Criterion performance benches for the stack's hot paths: array-factor
//! evaluation (every pattern sweep), Van Atta bistatic response (every link
//! evaluation), waveform demodulation (per-sample work), the DES scheduler,
//! and a full inventory round.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mmtag_antenna::element::PatchElement;
use mmtag_antenna::planar::{Direction, PlanarVanAtta};
use mmtag_antenna::{LinearArray, ReflectorWiring, VanAttaArray};
use mmtag_mac::aloha::{inventory_until_drained, QAlgorithm};
use mmtag_mac::gen2::{run_gen2_inventory, Gen2Tag, Gen2Timing};
use mmtag_phy::waveform::{Awgn, OokModem};
use mmtag_rf::fft::{fft, welch_psd};
use mmtag_rf::units::Angle;
use mmtag_rf::Complex;
use mmtag_sim::des::Scheduler;
use mmtag_sim::mobility::Pose;
use mmtag_sim::time::Instant;
use mmtag_sim::{Scene, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_array_factor(c: &mut Criterion) {
    let arr = LinearArray::half_wavelength(16);
    let w = arr.beam_weights(Angle::from_degrees(17.0));
    c.bench_function("array_factor_16el", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut deg = -90.0;
            while deg <= 90.0 {
                acc += arr.response(&w, Angle::from_degrees(deg)).norm_sqr();
                deg += 1.0;
            }
            black_box(acc)
        })
    });
}

fn bench_vanatta_monostatic(c: &mut Criterion) {
    let va = VanAttaArray::new(
        LinearArray::half_wavelength(6),
        PatchElement::mmtag_default(),
        ReflectorWiring::VanAtta,
    );
    c.bench_function("vanatta_monostatic_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut deg = -75.0;
            while deg <= 75.0 {
                acc += va.monostatic_gain(Angle::from_degrees(deg));
                deg += 1.0;
            }
            black_box(acc)
        })
    });
}

fn bench_ook_demod(c: &mut Criterion) {
    let modem = OokModem::new(4);
    let mut rng = StdRng::seed_from_u64(1);
    let bits: Vec<bool> = (0..4096).map(|_| rng.random()).collect();
    let mut samples = modem.modulate(&bits);
    Awgn::for_eb_n0(&modem, 10.0).apply(&mut samples, &mut rng);
    c.bench_function("ook_demod_4096bits", |b| {
        b.iter(|| black_box(modem.demodulate_coherent(&samples)))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("des_schedule_pop_10k", |b| {
        b.iter_batched(
            || {
                let mut s = Scheduler::new();
                let mut x: u64 = 0x9E3779B97F4A7C15;
                for i in 0..10_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    s.schedule_at(Instant::from_nanos(x % 1_000_000), i);
                }
                s
            },
            |mut s| {
                while let Some(e) = s.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_inventory(c: &mut Criterion) {
    c.bench_function("aloha_inventory_256tags", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(42),
            |mut rng| {
                black_box(inventory_until_drained(
                    256,
                    QAlgorithm::new(),
                    100_000,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fft(c: &mut Criterion) {
    let base: Vec<Complex> = (0..4096)
        .map(|i| Complex::from_phase(i as f64 * 0.37))
        .collect();
    c.bench_function("fft_4096", |b| {
        b.iter_batched(
            || base.clone(),
            |mut buf| {
                fft(&mut buf);
                black_box(buf)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("welch_psd_16k_512", |b| {
        let sig: Vec<Complex> = (0..16384)
            .map(|i| Complex::from_phase(i as f64 * 0.11))
            .collect();
        b.iter(|| black_box(welch_psd(&sig, 512)))
    });
}

fn bench_planar_gain(c: &mut Criterion) {
    let p = PlanarVanAtta::mmtag_planar();
    c.bench_function("planar_6x4_gain_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..60 {
                let th = Angle::from_degrees(-60.0 + 2.0 * i as f64);
                acc += p.monostatic_gain(Direction::from_spherical(
                    th,
                    Angle::from_degrees(30.0),
                ));
            }
            black_box(acc)
        })
    });
}

fn bench_gen2(c: &mut Criterion) {
    c.bench_function("gen2_inventory_128tags", |b| {
        b.iter_batched(
            || {
                (
                    (0..128).map(|i| Gen2Tag::new(i as u64)).collect::<Vec<_>>(),
                    StdRng::seed_from_u64(7),
                )
            },
            |(mut tags, mut rng)| {
                black_box(run_gen2_inventory(
                    &mut tags,
                    Gen2Timing::fast_mmwave(),
                    1_000_000,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_scene_paths(c: &mut Criterion) {
    let scene = Scene::room(8.0, 6.0);
    let reader = Pose::new(Vec2::new(1.0, 3.0), Angle::ZERO);
    let tag = Pose::new(Vec2::new(6.5, 2.0), Angle::from_degrees(180.0));
    c.bench_function("scene_paths_one_bounce", |b| {
        b.iter(|| black_box(scene.paths(reader, tag)))
    });
    c.bench_function("scene_paths_two_bounce", |b| {
        b.iter(|| black_box(scene.paths_with_order(reader, tag, 2)))
    });
}

criterion_group!(
    benches,
    bench_array_factor,
    bench_vanatta_monostatic,
    bench_ook_demod,
    bench_scheduler,
    bench_inventory,
    bench_fft,
    bench_planar_gain,
    bench_gen2,
    bench_scene_paths
);
criterion_main!(benches);
