//! Performance benches for the stack's hot paths on the in-house
//! [`mmtag_bench::timing`] harness (no external bench framework — the
//! workspace builds offline): array-factor evaluation (every pattern
//! sweep), Van Atta bistatic response (every link evaluation), waveform
//! demodulation (per-sample work), the DES scheduler, full inventory
//! rounds, and — the headline — the serial-vs-parallel Monte-Carlo
//! comparisons for BER and inventory ensembles.
//!
//! Run with `cargo bench -p mmtag-bench`. The parallel rows use the
//! machine's full `available_parallelism` (override with `MMTAG_THREADS`);
//! on a multi-core machine the `*_par` rows should be several times
//! faster than their `*_serial` twins, with bit-identical results —
//! which this harness also asserts.

use mmtag_antenna::element::PatchElement;
use mmtag_antenna::planar::{Direction, PlanarVanAtta};
use mmtag_antenna::{LinearArray, ReflectorWiring, VanAttaArray};
use mmtag_bench::timing::{bench, format_result, BenchResult};
use mmtag_mac::aloha::{inventory_ensemble_par_with, inventory_until_drained, QAlgorithm};
use mmtag_mac::gen2::{run_gen2_inventory, Gen2Tag, Gen2Timing};
use mmtag_phy::waveform::{ber_sweep_par_with, measure_ber_par_with, Awgn, OokModem};
use mmtag_rf::fft::{fft, welch_psd};
use mmtag_rf::rng::{Rng, SeedTree, Xoshiro256pp};
use mmtag_rf::units::Angle;
use mmtag_rf::Complex;
use mmtag_sim::des::Scheduler;
use mmtag_sim::mobility::Pose;
use mmtag_sim::time::Instant;
use mmtag_sim::{Scene, Vec2};
use std::hint::black_box;

const BER_BITS: usize = 100_000;
const BER_SNRS: [f64; 8] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
const ENSEMBLE_TAGS: usize = 128;
const ENSEMBLE_REPS: usize = 16;

fn micro_benches(results: &mut Vec<BenchResult>) {
    let arr = LinearArray::half_wavelength(16);
    let w = arr.beam_weights(Angle::from_degrees(17.0));
    results.push(bench("array_factor_16el", || {
        let mut acc = 0.0;
        let mut deg = -90.0;
        while deg <= 90.0 {
            acc += arr.response(&w, Angle::from_degrees(deg)).norm_sqr();
            deg += 1.0;
        }
        acc
    }));

    let va = VanAttaArray::new(
        LinearArray::half_wavelength(6),
        PatchElement::mmtag_default(),
        ReflectorWiring::VanAtta,
    );
    results.push(bench("vanatta_monostatic_sweep", || {
        let mut acc = 0.0;
        let mut deg = -75.0;
        while deg <= 75.0 {
            acc += va.monostatic_gain(Angle::from_degrees(deg));
            deg += 1.0;
        }
        acc
    }));

    let modem = OokModem::new(4);
    let mut rng = Xoshiro256pp::seed_from(1);
    let bits: Vec<bool> = (0..4096).map(|_| rng.bit()).collect();
    let mut samples = modem.modulate(&bits);
    Awgn::for_eb_n0(&modem, 10.0).apply(&mut samples, &mut rng);
    results.push(bench("ook_demod_4096bits", || {
        modem.demodulate_coherent(&samples)
    }));

    results.push(bench("des_schedule_pop_10k", || {
        let mut s = Scheduler::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.schedule_at(Instant::from_nanos(x % 1_000_000), i);
        }
        while let Some(e) = s.pop() {
            black_box(e);
        }
    }));

    results.push(bench("aloha_inventory_256tags", || {
        let mut rng = Xoshiro256pp::seed_from(42);
        inventory_until_drained(256, QAlgorithm::new(), 100_000, &mut rng)
    }));

    let base: Vec<Complex> = (0..4096)
        .map(|i| Complex::from_phase(i as f64 * 0.37))
        .collect();
    results.push(bench("fft_4096", || {
        let mut buf = base.clone();
        fft(&mut buf);
        buf
    }));
    let sig: Vec<Complex> = (0..16384)
        .map(|i| Complex::from_phase(i as f64 * 0.11))
        .collect();
    results.push(bench("welch_psd_16k_512", || welch_psd(&sig, 512)));

    let p = PlanarVanAtta::mmtag_planar();
    results.push(bench("planar_6x4_gain_sweep", || {
        let mut acc = 0.0;
        for i in 0..60 {
            let th = Angle::from_degrees(-60.0 + 2.0 * i as f64);
            acc += p.monostatic_gain(Direction::from_spherical(th, Angle::from_degrees(30.0)));
        }
        acc
    }));

    results.push(bench("gen2_inventory_128tags", || {
        let mut rng = Xoshiro256pp::seed_from(7);
        let mut tags: Vec<Gen2Tag> = (0..128).map(|i| Gen2Tag::new(i as u64)).collect();
        run_gen2_inventory(&mut tags, Gen2Timing::fast_mmwave(), 1_000_000, &mut rng)
    }));

    let scene = Scene::room(8.0, 6.0);
    let reader = Pose::new(Vec2::new(1.0, 3.0), Angle::ZERO);
    let tag = Pose::new(Vec2::new(6.5, 2.0), Angle::from_degrees(180.0));
    results.push(bench("scene_paths_one_bounce", || scene.paths(reader, tag)));
    results.push(bench("scene_paths_two_bounce", || {
        scene.paths_with_order(reader, tag, 2)
    }));
}

/// Serial-vs-parallel pairs. Returns (results, named speedups).
fn engine_benches(threads: usize) -> (Vec<BenchResult>, Vec<(String, f64)>) {
    let mut results = Vec::new();
    let mut speedups = Vec::new();
    let tree = SeedTree::new(0xBE9C);
    let modem = OokModem::new(4);

    // Single-point BER: the chunked Monte-Carlo core.
    let serial = bench("ber_point_100kbit_serial", || {
        measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree)
    });
    let par = bench("ber_point_100kbit_par", || {
        measure_ber_par_with(threads, &modem, 7.0, BER_BITS, true, &tree)
    });
    let a = measure_ber_par_with(1, &modem, 7.0, BER_BITS, true, &tree);
    let b = measure_ber_par_with(threads, &modem, 7.0, BER_BITS, true, &tree);
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "parallel BER must be bit-identical"
    );
    speedups.push(("ber_point_100kbit".to_string(), par.speedup_over(&serial)));
    results.push(serial);
    results.push(par);

    // Full 8-point sweep: parallel over (SNR × chunk).
    let serial = bench("ber_sweep_8x100kbit_serial", || {
        ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree)
    });
    let par = bench("ber_sweep_8x100kbit_par", || {
        ber_sweep_par_with(threads, &modem, &BER_SNRS, BER_BITS, true, &tree)
    });
    let a = ber_sweep_par_with(1, &modem, &BER_SNRS, BER_BITS, true, &tree);
    let b = ber_sweep_par_with(threads, &modem, &BER_SNRS, BER_BITS, true, &tree);
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "parallel BER sweep must be bit-identical"
    );
    speedups.push(("ber_sweep_8x100kbit".to_string(), par.speedup_over(&serial)));
    results.push(serial);
    results.push(par);

    // Inventory ensemble: one repetition per work unit.
    let serial = bench("aloha_ensemble_128tags_x16_serial", || {
        inventory_ensemble_par_with(
            1,
            ENSEMBLE_TAGS,
            QAlgorithm::new(),
            100_000,
            ENSEMBLE_REPS,
            &tree,
        )
    });
    let par = bench("aloha_ensemble_128tags_x16_par", || {
        inventory_ensemble_par_with(
            threads,
            ENSEMBLE_TAGS,
            QAlgorithm::new(),
            100_000,
            ENSEMBLE_REPS,
            &tree,
        )
    });
    let a = inventory_ensemble_par_with(
        1,
        ENSEMBLE_TAGS,
        QAlgorithm::new(),
        100_000,
        ENSEMBLE_REPS,
        &tree,
    );
    let b = inventory_ensemble_par_with(
        threads,
        ENSEMBLE_TAGS,
        QAlgorithm::new(),
        100_000,
        ENSEMBLE_REPS,
        &tree,
    );
    assert_eq!(a, b, "parallel ensemble must be bit-identical");
    speedups.push((
        "aloha_ensemble_128tags_x16".to_string(),
        par.speedup_over(&serial),
    ));
    results.push(serial);
    results.push(par);

    (results, speedups)
}

fn main() {
    let threads = mmtag_rf::par::thread_limit();
    println!("== mmtag hot-path benches (parallel rows: {threads} threads) ==");
    let mut results = Vec::new();
    micro_benches(&mut results);
    let (engine, speedups) = engine_benches(threads);
    results.extend(engine);
    for r in &results {
        println!("{}", format_result(r));
    }
    println!("\n== serial → parallel speedups ({threads} threads) ==");
    for (name, ratio) in &speedups {
        println!("{name:<40} {ratio:>6.2}×");
    }
}
